//! Trait over the field types that may appear in an event payload.

use std::fmt;

use crate::wire::{CodecError, Reader, Writer};

/// A fixed-width field of an event payload.
///
/// Implemented for the scalar integers and fixed arrays used by the event
/// catalog; the catalog macro sums `LEN` to derive each event's encoded
/// length at compile time, and `view_at` backs the generated borrowed
/// event views (`EventRef` and friends) that read fields straight out of
/// validated wire bytes without materializing the payload struct.
pub trait WireField: Sized {
    /// Encoded length in bytes.
    const LEN: usize;
    /// The all-zeroes value (used by `Default` impls of payload structs).
    const ZERO: Self;
    /// The borrowed form of this field as read from wire bytes: scalars
    /// by value, arrays as lazy views over the little-endian bytes.
    type View<'v>: Copy + fmt::Debug;
    /// Appends this field to the writer.
    fn write(&self, w: &mut Writer<'_>);
    /// Reads this field from the reader.
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError>;
    /// Reads the field's view from `bytes[off..off + Self::LEN]`.
    ///
    /// The caller guarantees the slice is long enough — the generated
    /// event views only exist over exact-length payloads.
    fn view_at(bytes: &[u8], off: usize) -> Self::View<'_>;
    /// Whether a view equals an owned field value (pins the view reads
    /// to the materializing decoder in property tests).
    fn view_matches(view: Self::View<'_>, owned: &Self) -> bool;
}

/// A borrowed `[u64; N]` field, decoded lazily from little-endian wire
/// bytes on each access instead of being copied out up front.
#[derive(Clone, Copy)]
pub struct U64ArrayView<'a, const N: usize> {
    bytes: &'a [u8],
}

impl<'a, const N: usize> U64ArrayView<'a, N> {
    /// Element `i`, decoded from its eight little-endian bytes.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.bytes[i * 8..i * 8 + 8].try_into().unwrap())
    }

    /// Number of elements (`N`).
    #[inline]
    pub fn len(&self) -> usize {
        N
    }

    /// `true` when `N == 0` (never, for catalog fields).
    #[inline]
    pub fn is_empty(&self) -> bool {
        N == 0
    }

    /// Iterates the decoded elements in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + 'a {
        let bytes = self.bytes;
        (0..N).map(move |i| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap()))
    }

    /// Materializes the owned array.
    pub fn to_array(self) -> [u64; N] {
        let mut out = [0u64; N];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.get(i);
        }
        out
    }
}

impl<const N: usize> PartialEq<[u64; N]> for U64ArrayView<'_, N> {
    fn eq(&self, other: &[u64; N]) -> bool {
        (0..N).all(|i| self.get(i) == other[i])
    }
}

impl<const N: usize> fmt::Debug for U64ArrayView<'_, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl WireField for u8 {
    const LEN: usize = 1;
    const ZERO: Self = 0;
    type View<'v> = u8;
    fn write(&self, w: &mut Writer<'_>) {
        w.u8(*self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u8()
    }
    #[inline]
    fn view_at(bytes: &[u8], off: usize) -> u8 {
        bytes[off]
    }
    fn view_matches(view: u8, owned: &Self) -> bool {
        view == *owned
    }
}

impl WireField for u16 {
    const LEN: usize = 2;
    const ZERO: Self = 0;
    type View<'v> = u16;
    fn write(&self, w: &mut Writer<'_>) {
        w.u16(*self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u16()
    }
    #[inline]
    fn view_at(bytes: &[u8], off: usize) -> u16 {
        u16::from_le_bytes(bytes[off..off + 2].try_into().unwrap())
    }
    fn view_matches(view: u16, owned: &Self) -> bool {
        view == *owned
    }
}

impl WireField for u32 {
    const LEN: usize = 4;
    const ZERO: Self = 0;
    type View<'v> = u32;
    fn write(&self, w: &mut Writer<'_>) {
        w.u32(*self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
    #[inline]
    fn view_at(bytes: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
    }
    fn view_matches(view: u32, owned: &Self) -> bool {
        view == *owned
    }
}

impl WireField for u64 {
    const LEN: usize = 8;
    const ZERO: Self = 0;
    type View<'v> = u64;
    fn write(&self, w: &mut Writer<'_>) {
        w.u64(*self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
    #[inline]
    fn view_at(bytes: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
    }
    fn view_matches(view: u64, owned: &Self) -> bool {
        view == *owned
    }
}

impl<const N: usize> WireField for [u64; N] {
    const LEN: usize = 8 * N;
    const ZERO: Self = [0; N];
    type View<'v> = U64ArrayView<'v, N>;
    fn write(&self, w: &mut Writer<'_>) {
        w.u64_array(self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64_array::<N>()
    }
    #[inline]
    fn view_at(bytes: &[u8], off: usize) -> U64ArrayView<'_, N> {
        U64ArrayView {
            bytes: &bytes[off..off + 8 * N],
        }
    }
    fn view_matches(view: U64ArrayView<'_, N>, owned: &Self) -> bool {
        view == *owned
    }
}

impl<const N: usize> WireField for [u8; N] {
    const LEN: usize = N;
    const ZERO: Self = [0; N];
    type View<'v> = &'v [u8; N];
    fn write(&self, w: &mut Writer<'_>) {
        w.bytes(self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.bytes::<N>()
    }
    #[inline]
    fn view_at(bytes: &[u8], off: usize) -> &[u8; N] {
        bytes[off..off + N].try_into().unwrap()
    }
    fn view_matches(view: &[u8; N], owned: &Self) -> bool {
        view == owned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lens() {
        assert_eq!(<u8 as WireField>::LEN, 1);
        assert_eq!(<u64 as WireField>::LEN, 8);
        assert_eq!(<[u64; 32] as WireField>::LEN, 256);
        assert_eq!(<[u8; 64] as WireField>::LEN, 64);
    }

    #[test]
    fn array_round_trip() {
        let mut buf = Vec::new();
        let a: [u64; 4] = [1, 2, 3, u64::MAX];
        a.write(&mut Writer::new(&mut buf));
        let got = <[u64; 4] as WireField>::read(&mut Reader::new(&buf)).unwrap();
        assert_eq!(got, a);
    }

    #[test]
    fn views_read_what_write_wrote() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.u8(7);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0102_0304_0506_0708);
        w.u64_array(&[1, u64::MAX]);
        w.bytes(&[9, 8, 7]);
        assert_eq!(<u8 as WireField>::view_at(&buf, 0), 7);
        assert_eq!(<u16 as WireField>::view_at(&buf, 1), 0x1234);
        assert_eq!(<u32 as WireField>::view_at(&buf, 3), 0xdead_beef);
        assert_eq!(<u64 as WireField>::view_at(&buf, 7), 0x0102_0304_0506_0708);
        let arr = <[u64; 2] as WireField>::view_at(&buf, 15);
        assert_eq!(arr.get(0), 1);
        assert_eq!(arr.get(1), u64::MAX);
        assert_eq!(arr.len(), 2);
        assert!(arr == [1, u64::MAX]);
        assert_eq!(arr.to_array(), [1, u64::MAX]);
        assert_eq!(arr.iter().collect::<Vec<_>>(), vec![1, u64::MAX]);
        assert_eq!(<[u8; 3] as WireField>::view_at(&buf, 31), &[9, 8, 7]);
    }
}
