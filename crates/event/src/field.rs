//! Trait over the field types that may appear in an event payload.

use crate::wire::{CodecError, Reader, Writer};

/// A fixed-width field of an event payload.
///
/// Implemented for the scalar integers and fixed arrays used by the event
/// catalog; the catalog macro sums `LEN` to derive each event's encoded
/// length at compile time.
pub trait WireField: Sized {
    /// Encoded length in bytes.
    const LEN: usize;
    /// The all-zeroes value (used by `Default` impls of payload structs).
    const ZERO: Self;
    /// Appends this field to the writer.
    fn write(&self, w: &mut Writer<'_>);
    /// Reads this field from the reader.
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

impl WireField for u8 {
    const LEN: usize = 1;
    const ZERO: Self = 0;
    fn write(&self, w: &mut Writer<'_>) {
        w.u8(*self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u8()
    }
}

impl WireField for u16 {
    const LEN: usize = 2;
    const ZERO: Self = 0;
    fn write(&self, w: &mut Writer<'_>) {
        w.u16(*self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u16()
    }
}

impl WireField for u32 {
    const LEN: usize = 4;
    const ZERO: Self = 0;
    fn write(&self, w: &mut Writer<'_>) {
        w.u32(*self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
}

impl WireField for u64 {
    const LEN: usize = 8;
    const ZERO: Self = 0;
    fn write(&self, w: &mut Writer<'_>) {
        w.u64(*self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl<const N: usize> WireField for [u64; N] {
    const LEN: usize = 8 * N;
    const ZERO: Self = [0; N];
    fn write(&self, w: &mut Writer<'_>) {
        w.u64_array(self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64_array::<N>()
    }
}

impl<const N: usize> WireField for [u8; N] {
    const LEN: usize = N;
    const ZERO: Self = [0; N];
    fn write(&self, w: &mut Writer<'_>) {
        w.bytes(self);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.bytes::<N>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lens() {
        assert_eq!(<u8 as WireField>::LEN, 1);
        assert_eq!(<u64 as WireField>::LEN, 8);
        assert_eq!(<[u64; 32] as WireField>::LEN, 256);
        assert_eq!(<[u8; 64] as WireField>::LEN, 64);
    }

    #[test]
    fn array_round_trip() {
        let mut buf = Vec::new();
        let a: [u64; 4] = [1, 2, 3, u64::MAX];
        a.write(&mut Writer::new(&mut buf));
        let got = <[u64; 4] as WireField>::read(&mut Reader::new(&buf)).unwrap();
        assert_eq!(got, a);
    }
}
