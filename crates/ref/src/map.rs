//! The physical memory map shared by the DUT model, the REF and the
//! workload generators.

/// Base of the RAM window (also [`crate::Memory::RAM_BASE`]).
pub const RAM_BASE: u64 = 0x8000_0000;

/// CLINT base address.
pub const CLINT_BASE: u64 = 0x0200_0000;
/// CLINT `msip` software-interrupt register.
pub const CLINT_MSIP: u64 = CLINT_BASE;
/// CLINT `mtimecmp` timer compare register.
pub const CLINT_MTIMECMP: u64 = CLINT_BASE + 0x4000;
/// CLINT `mtime` free-running counter.
pub const CLINT_MTIME: u64 = CLINT_BASE + 0xbff8;

/// UART base address.
pub const UART_BASE: u64 = 0x1000_0000;
/// UART data register (read: receive, write: transmit).
pub const UART_DATA: u64 = UART_BASE;
/// UART line-status register.
pub const UART_STATUS: u64 = UART_BASE + 5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Memory;

    #[test]
    fn devices_live_in_the_mmio_hole() {
        for addr in [
            CLINT_MSIP,
            CLINT_MTIMECMP,
            CLINT_MTIME,
            UART_DATA,
            UART_STATUS,
        ] {
            assert!(Memory::is_mmio(addr), "{addr:#x}");
        }
        assert_eq!(RAM_BASE, Memory::RAM_BASE);
    }
}
