//! Architectural state: PC, integer/floating-point register files, CSRs.

use difftest_isa::csr::{CsrIndex, CSR_COUNT};
use difftest_isa::{FReg, Reg};
use serde::{Deserialize, Serialize};

/// The complete architectural state of one hart.
///
/// Both the reference model and the DUT model carry an `ArchState`; the
/// checker compares fields of the two after each (fused group of)
/// instruction(s).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchState {
    pc: u64,
    xregs: [u64; 32],
    fregs: [u64; 32],
    csrs: [u64; CSR_COUNT],
    /// LR/SC reservation address, if any.
    reservation: Option<u64>,
    /// Retired-instruction counter (mirrors `minstret`).
    instret: u64,
}

impl ArchState {
    /// Creates the reset state with the program counter at `reset_pc`.
    pub fn new(reset_pc: u64) -> Self {
        let mut csrs = [0u64; CSR_COUNT];
        // RV64, I+M+A+D extensions advertised in misa.
        csrs[CsrIndex::Misa.dense()] = (2u64 << 62) | (1 << 8) | (1 << 12) | (1 << 0) | (1 << 3);
        ArchState {
            pc: reset_pc,
            xregs: [0; 32],
            fregs: [0; 32],
            csrs,
            reservation: None,
            instret: 0,
        }
    }

    /// The current program counter.
    #[inline]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    #[inline]
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Reads an integer register (`x0` always reads zero).
    #[inline]
    pub fn xreg(&self, r: Reg) -> u64 {
        self.xregs[r.index()]
    }

    /// Writes an integer register (writes to `x0` are discarded).
    #[inline]
    pub fn set_xreg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.xregs[r.index()] = value;
        }
    }

    /// Reads a floating-point register as raw bits.
    #[inline]
    pub fn freg(&self, r: FReg) -> u64 {
        self.fregs[r.index()]
    }

    /// Writes a floating-point register as raw bits.
    #[inline]
    pub fn set_freg(&mut self, r: FReg, value: u64) {
        self.fregs[r.index()] = value;
    }

    /// Reads a tracked CSR.
    #[inline]
    pub fn csr(&self, c: CsrIndex) -> u64 {
        self.csrs[c.dense()]
    }

    /// Writes a tracked CSR.
    #[inline]
    pub fn set_csr(&mut self, c: CsrIndex, value: u64) {
        self.csrs[c.dense()] = value;
    }

    /// A borrowed view of the full integer register file.
    #[inline]
    pub fn xregs(&self) -> &[u64; 32] {
        &self.xregs
    }

    /// A borrowed view of the full floating-point register file.
    #[inline]
    pub fn fregs(&self) -> &[u64; 32] {
        &self.fregs
    }

    /// A borrowed view of the dense CSR file (indexed by [`CsrIndex`]).
    #[inline]
    pub fn csrs(&self) -> &[u64; CSR_COUNT] {
        &self.csrs
    }

    /// Overwrites the full integer register file (checkpoint restore).
    /// The `x0` slot is forced back to zero to preserve the hardwired
    /// invariant whatever the input says.
    pub fn set_xregs(&mut self, regs: [u64; 32]) {
        self.xregs = regs;
        self.xregs[0] = 0;
    }

    /// Overwrites the full floating-point register file (checkpoint restore).
    pub fn set_fregs(&mut self, regs: [u64; 32]) {
        self.fregs = regs;
    }

    /// Overwrites the dense CSR file (checkpoint restore).
    pub fn set_csrs(&mut self, csrs: [u64; CSR_COUNT]) {
        self.csrs = csrs;
    }

    /// The current LR/SC reservation address.
    #[inline]
    pub fn reservation(&self) -> Option<u64> {
        self.reservation
    }

    /// Replaces the LR/SC reservation, returning the previous one.
    #[inline]
    pub fn set_reservation(&mut self, r: Option<u64>) -> Option<u64> {
        std::mem::replace(&mut self.reservation, r)
    }

    /// The number of retired instructions.
    #[inline]
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Sets the retired-instruction counter (mirrored into `minstret`).
    #[inline]
    pub fn set_instret(&mut self, value: u64) {
        self.instret = value;
        self.csrs[CsrIndex::Minstret.dense()] = value;
    }
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired() {
        let mut s = ArchState::new(0x8000_0000);
        s.set_xreg(Reg::ZERO, 0xdead);
        assert_eq!(s.xreg(Reg::ZERO), 0);
        s.set_xreg(Reg::A0, 0xdead);
        assert_eq!(s.xreg(Reg::A0), 0xdead);
    }

    #[test]
    fn instret_mirrors_minstret() {
        let mut s = ArchState::new(0);
        s.set_instret(41);
        assert_eq!(s.csr(CsrIndex::Minstret), 41);
    }

    #[test]
    fn reset_state() {
        let s = ArchState::new(0x8000_0000);
        assert_eq!(s.pc(), 0x8000_0000);
        assert_eq!(s.instret(), 0);
        assert!(s.reservation().is_none());
        assert_ne!(s.csr(CsrIndex::Misa), 0);
    }

    #[test]
    fn reservation_swap() {
        let mut s = ArchState::new(0);
        assert_eq!(s.set_reservation(Some(16)), None);
        assert_eq!(s.set_reservation(None), Some(16));
    }
}
