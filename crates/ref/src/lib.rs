//! The golden reference model (REF) of the co-simulation framework.
//!
//! In the paper's deployment the REF is a software instruction-set simulator
//! (NEMU or Spike) driven by the ISA checker. This crate provides the same
//! component written from scratch in Rust:
//!
//! - [`ArchState`]: the architectural state (PC, x/f register files, CSRs),
//! - [`Memory`]: a sparse physical memory with an MMIO hole,
//! - [`exec`]: pure RV64 instruction semantics producing an [`exec::Effect`],
//! - [`RefModel`]: the steppable simulator with non-deterministic-event
//!   synchronization hooks (`skip_next` for MMIO loads, `raise_interrupt`)
//!   and compensation-log checkpointing (`checkpoint` / `revert`) used by
//!   the Replay debugging mechanism (paper §4.4).
//!
//! # Examples
//!
//! ```
//! use difftest_isa::{encode, Reg};
//! use difftest_ref::{Memory, RefModel, StepOutcome};
//!
//! let mut mem = Memory::new();
//! mem.load_words(Memory::RAM_BASE, &[
//!     encode::addi(Reg::A0, Reg::ZERO, 5),
//!     encode::addi(Reg::A0, Reg::A0, 1),
//! ]);
//! let mut m = RefModel::new(mem);
//! m.step();
//! assert!(matches!(m.step(), StepOutcome::Retired { .. }));
//! assert_eq!(m.state().xreg(Reg::A0), 6);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod exec;
mod icache;
mod journal;
pub mod map;
mod mem;
mod model;
mod state;
pub mod wireio;

pub use checkpoint::CheckpointError;
pub use icache::{BlockCache, BlockCacheStats, DecodeCache, DecodeCacheStats, Uop, MAX_BLOCK_LEN};
pub use journal::{Journal, JournalEntry};
pub use mem::Memory;
pub use model::{RefModel, StepOutcome};
pub use state::ArchState;
