//! Instruction caching for the REF model: a per-insn decode cache and a
//! basic-block trace cache.
//!
//! # Per-instruction decode cache
//!
//! `RefModel::step` fetches and decodes the instruction at the current PC
//! on every call; on the host hot path the decode is pure overhead for the
//! overwhelmingly common case of re-executing already-seen code. The cache
//! stores the decoded [`Insn`] keyed by `(pc, raw_bits)` — the raw word is
//! re-fetched and compared on every hit, so a stale entry can never
//! produce a wrong instruction: `decode` is a pure function of the raw
//! bits, and a raw mismatch is simply a miss.
//!
//! Invalidation is still performed eagerly (rather than relying on the
//! key alone) so hit-rate accounting stays honest and slots free up:
//!
//! - a store that intersects a cached line's `[pc, pc+4)` window
//!   invalidates that line ([`DecodeCache::invalidate_store`]),
//! - `fence`/`fence.i` (and any future SFENCE decoding) flushes the whole
//!   cache (the RISC-V contract for making stores visible to fetch),
//! - a journal revert flushes too — compensation entries can restore old
//!   code bytes without going through the store path.
//!
//! # Basic-block trace cache
//!
//! The [`BlockCache`] goes one level up: on a miss at a block head it
//! decodes *forward* until a control-flow/fence/system boundary (bounded
//! by [`MAX_BLOCK_LEN`] and the 4 KiB page), storing the run as a vector
//! of pre-decoded micro-ops ([`Uop`]: the [`Insn`] plus its pre-resolved
//! [`ExecFn`]) together with an FNV-1a fingerprint of the raw code words.
//! Re-entering the block revalidates *once* — one fingerprint pass over
//! the live bytes — and then a cursor walks the micro-op array step by
//! step with no refetch, no decode-cache probe, and no per-insn dispatch
//! `match`. The cursor validates itself cheaply on every step (block
//! identity and expected PC), so interrupts, reverts, external PC writes
//! and self-modifying stores all degrade gracefully into an early exit
//! back to the interpreter path rather than into stale execution.
//!
//! Coherence mirrors the decode cache and stays eager:
//!
//! - a store intersecting a block's `[base, base + 4·len)` range drops the
//!   block ([`BlockCache::invalidate_store`]) — including the block the
//!   cursor is currently inside,
//! - `fence` and journal reverts flush everything (cursor included),
//! - the entry fingerprint is the belt-and-suspenders backstop for any
//!   path that bypasses the store hook.

use crate::exec::{exec_fn, ExecFn};
use crate::Memory;
use difftest_isa::{decode, Insn};
use serde::{Deserialize, Serialize};

/// Entries in the direct-mapped array. 4096 × ~48 B keeps the table well
/// inside L2 while covering the hot loops of every workload preset.
const SLOTS: usize = 4096;

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Entry {
    pc: u64,
    raw: u32,
    insn: Insn,
}

/// Hit/miss/invalidation counters, exposed for tests and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to `decode`.
    pub misses: u64,
    /// Lines invalidated by intersecting stores.
    pub store_invalidations: u64,
    /// Whole-cache flushes (fence, revert).
    pub flushes: u64,
}

impl DecodeCacheStats {
    /// Accumulates another core's counters (multi-core aggregation).
    pub fn merge(&mut self, other: &DecodeCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.store_invalidations += other.store_invalidations;
        self.flushes += other.flushes;
    }
}

/// The cache itself. See the module docs for the coherence rules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecodeCache {
    slots: Vec<Option<Entry>>,
    enabled: bool,
    stats: DecodeCacheStats,
}

impl Default for DecodeCache {
    fn default() -> Self {
        DecodeCache {
            slots: vec![None; SLOTS],
            enabled: true,
            stats: DecodeCacheStats::default(),
        }
    }
}

impl DecodeCache {
    #[inline]
    fn index(pc: u64) -> usize {
        ((pc >> 2) as usize) & (SLOTS - 1)
    }

    /// Looks up the decoded instruction for `(pc, raw)`.
    #[inline]
    pub fn lookup(&mut self, pc: u64, raw: u32) -> Option<Insn> {
        if !self.enabled {
            return None;
        }
        match self.slots[Self::index(pc)] {
            Some(e) if e.pc == pc && e.raw == raw => {
                self.stats.hits += 1;
                Some(e.insn)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Caches a freshly decoded instruction.
    #[inline]
    pub fn insert(&mut self, pc: u64, raw: u32, insn: Insn) {
        if self.enabled {
            self.slots[Self::index(pc)] = Some(Entry { pc, raw, insn });
        }
    }

    /// Invalidates every cached line whose 4-byte fetch window intersects
    /// the stored range `[addr, addr + len)`.
    ///
    /// A line for `pc` intersects iff `pc + 4 > addr && pc < addr + len`,
    /// i.e. `pc ∈ [addr - 3, addr + len - 1]` — at most `(len + 6) / 4 + 1`
    /// direct-mapped slots for the `len ≤ 8` stores the ISA produces.
    pub fn invalidate_store(&mut self, addr: u64, len: u64) {
        if !self.enabled || len == 0 {
            return;
        }
        let first = addr.saturating_sub(3);
        let last = addr + len - 1;
        for word in (first >> 2)..=(last >> 2) {
            let slot = &mut self.slots[(word as usize) & (SLOTS - 1)];
            if let Some(e) = slot {
                if e.pc + 4 > addr && e.pc < addr + len {
                    *slot = None;
                    self.stats.store_invalidations += 1;
                }
            }
        }
    }

    /// Drops every entry (fence, journal revert).
    pub fn flush(&mut self) {
        if self.slots.iter().any(Option::is_some) {
            self.slots.iter_mut().for_each(|s| *s = None);
        }
        self.stats.flushes += 1;
    }

    /// Enables or disables the cache. Disabling flushes, so a re-enable
    /// never observes pre-disable entries.
    pub fn set_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.slots.iter_mut().for_each(|s| *s = None);
        }
        self.enabled = enabled;
    }

    /// Whether lookups are served at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The counters.
    pub fn stats(&self) -> DecodeCacheStats {
        self.stats
    }
}

// Basic-block trace cache ---------------------------------------------------

/// Maximum number of micro-ops in one cached block. 32 covers the hot
/// loop bodies of every workload preset while keeping the worst-case
/// store-intersect probe window (and entry fingerprint pass) small.
pub const MAX_BLOCK_LEN: usize = 32;

/// Direct-mapped block slots. 1024 blocks × up to 32 micro-ops dwarfs the
/// per-insn cache's reach at a fraction of the probe cost.
const BLOCK_SLOTS: usize = 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Folds one 32-bit code word into an FNV-1a style hash (word-at-a-time
/// rather than byte-at-a-time: one XOR and one multiply per instruction
/// keeps entry revalidation near one cycle per cached word).
#[inline]
fn fnv_word(h: u64, w: u32) -> u64 {
    (h ^ w as u64).wrapping_mul(FNV_PRIME)
}

/// Fingerprints a little-endian byte image of a block's code words.
#[inline]
fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    bytes.chunks_exact(4).fold(FNV_OFFSET, |h, c| {
        fnv_word(h, u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    })
}

/// One pre-decoded micro-op: the decoded instruction plus its executor,
/// resolved once at block-build time so dispatch is a single indirect call.
#[derive(Debug, Clone, Copy)]
pub struct Uop {
    /// The decoded instruction.
    pub insn: Insn,
    /// Pre-resolved executor for `insn.op`.
    pub exec: ExecFn,
}

#[derive(Debug, Clone)]
struct Block {
    /// PC of the first micro-op.
    base: u64,
    /// Unique, never-reused build id — the cursor's ABA guard: a slot
    /// overwritten and rebuilt at the same base can never satisfy a stale
    /// cursor.
    id: u64,
    /// FNV fingerprint over the block's raw code words.
    fp: u64,
    uops: Box<[Uop]>,
}

/// A position inside a cached block, kept across `step` calls.
///
/// Carries the block's `base` and `len` so [`BlockCache::retire`] is pure
/// arithmetic on the cursor — no slot probe on the per-step hot path.
/// Liveness (`slot` occupied, `id` matching) is checked once per step in
/// [`BlockCache::fetch`], which has to read the slot anyway to hand out
/// the micro-op.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    slot: usize,
    id: u64,
    /// Index of the micro-op about to execute. Invariant: `pos < len`.
    pos: u32,
    /// The block's micro-op count.
    len: u32,
    /// PC of the block's first micro-op.
    base: u64,
}

/// Block-cache counters, exposed for tests and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCacheStats {
    /// Block entries revalidated by fingerprint and served from cache.
    pub hits: u64,
    /// Block builds (cold entries and fingerprint mismatches).
    pub misses: u64,
    /// Blocks dropped because a store intersected their address range.
    pub store_invalidations: u64,
    /// Whole-cache flushes (fence, revert).
    pub flushes: u64,
    /// Blocks left before their final micro-op (trap, MMIO/skip sync,
    /// redirect, or invalidation under the cursor).
    pub early_exits: u64,
    /// Blocks whose final micro-op was reached.
    pub completed: u64,
    /// Steps dispatched from a cached block (no refetch, no re-decode).
    pub uop_steps: u64,
}

impl BlockCacheStats {
    /// Folds `other` into `self` (multi-core aggregation).
    pub fn merge(&mut self, other: &BlockCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.store_invalidations += other.store_invalidations;
        self.flushes += other.flushes;
        self.early_exits += other.early_exits;
        self.completed += other.completed;
        self.uop_steps += other.uop_steps;
    }
}

/// The basic-block trace cache. See the module docs for the design and
/// coherence rules.
///
/// The cache is deliberately *not* serializable — micro-ops carry function
/// pointers — and it is pure acceleration state: a deserialized model
/// simply starts cold.
#[derive(Debug, Clone)]
pub struct BlockCache {
    slots: Vec<Option<Block>>,
    cursor: Option<Cursor>,
    enabled: bool,
    next_id: u64,
    /// Watermarks over every address any live block has covered; stores
    /// outside `[code_lo, code_hi)` skip the probe loop entirely, so pure
    /// data traffic costs two compares.
    code_lo: u64,
    code_hi: u64,
    stats: BlockCacheStats,
    lens: [u64; MAX_BLOCK_LEN + 1],
}

impl Default for BlockCache {
    fn default() -> Self {
        BlockCache {
            slots: vec![None; BLOCK_SLOTS],
            cursor: None,
            enabled: true,
            next_id: 0,
            code_lo: u64::MAX,
            code_hi: 0,
            stats: BlockCacheStats::default(),
            lens: [0; MAX_BLOCK_LEN + 1],
        }
    }
}

impl BlockCache {
    #[inline]
    fn index(pc: u64) -> usize {
        ((pc >> 2) as usize) & (BLOCK_SLOTS - 1)
    }

    /// Returns the micro-op to execute at `pc`, advancing through the
    /// active block when possible, revalidating or building a block at a
    /// block head otherwise. `None` means the caller must take the
    /// interpreter path (cache disabled, or the fetch would straddle a
    /// page boundary).
    #[inline]
    pub fn fetch(&mut self, pc: u64, mem: &Memory) -> Option<Uop> {
        if !self.enabled {
            return None;
        }
        // Cursor fast path: mid-block steps cost an identity check and a
        // PC compare — no hashing, no memory traffic beyond the slot.
        if let Some(cur) = self.cursor {
            if cur.base + 4 * cur.pos as u64 == pc {
                if let Some(b) = self.slots[cur.slot].as_ref() {
                    // The id is the ABA guard: same id ⇒ same build, so
                    // `pos < len` (a retire invariant) still bounds `uops`.
                    if b.id == cur.id {
                        self.stats.uop_steps += 1;
                        return Some(b.uops[cur.pos as usize]);
                    }
                }
            }
            // Stale cursor (external PC write, interrupt, invalidation
            // under the cursor): count the abandoned block and take a
            // normal entry below.
            self.cursor = None;
            self.stats.early_exits += 1;
        }
        self.enter(pc, mem)
    }

    /// Block-entry path: revalidate a cached block once by fingerprint, or
    /// build a fresh one.
    fn enter(&mut self, pc: u64, mem: &Memory) -> Option<Uop> {
        let slot = Self::index(pc);
        let mut entry = None;
        if let Some(b) = self.slots[slot].as_ref() {
            if b.base == pc {
                if let Some(bytes) = mem.page_slice(pc, b.uops.len() * 4) {
                    if fingerprint_bytes(bytes) == b.fp {
                        entry = Some((b.id, b.uops.len() as u32, b.uops[0]));
                    }
                }
            }
        }
        if let Some((id, len, uop)) = entry {
            self.stats.hits += 1;
            self.stats.uop_steps += 1;
            self.cursor = Some(Cursor {
                slot,
                id,
                pos: 0,
                len,
                base: pc,
            });
            return Some(uop);
        }
        self.build(pc, mem)
    }

    /// Decodes forward from `pc` to the next block boundary and caches the
    /// run. Never crosses a page boundary, so the entry fingerprint can be
    /// computed from a single borrowed page slice.
    fn build(&mut self, pc: u64, mem: &Memory) -> Option<Uop> {
        self.stats.misses += 1;
        let max_words = (Memory::page_remaining(pc) / 4).min(MAX_BLOCK_LEN);
        if max_words == 0 {
            // The word itself straddles a page: interpreter's problem.
            return None;
        }
        let mut uops = Vec::with_capacity(8);
        let mut fp = FNV_OFFSET;
        for i in 0..max_words {
            let raw = mem.fetch(pc + 4 * i as u64);
            fp = fnv_word(fp, raw);
            let insn = decode(raw);
            let ends = insn.op.ends_block();
            uops.push(Uop {
                insn,
                exec: exec_fn(insn.op),
            });
            if ends {
                break;
            }
        }
        let len = uops.len();
        self.lens[len] += 1;
        self.code_lo = self.code_lo.min(pc);
        self.code_hi = self.code_hi.max(pc + 4 * len as u64);
        let id = self.next_id;
        self.next_id += 1;
        let first = uops[0];
        let slot = Self::index(pc);
        self.slots[slot] = Some(Block {
            base: pc,
            id,
            fp,
            uops: uops.into_boxed_slice(),
        });
        self.cursor = Some(Cursor {
            slot,
            id,
            pos: 0,
            len: len as u32,
            base: pc,
        });
        self.stats.uop_steps += 1;
        Some(first)
    }

    /// Advances the cursor after a block-dispatched step, given the PC
    /// that will execute next. Sequential fall-through moves to the next
    /// micro-op; reaching the block's final micro-op completes it; any
    /// other transfer (trap entry mid-block) is an early exit back to
    /// the entry path. Pure cursor arithmetic — liveness was checked by
    /// [`fetch`](Self::fetch) this step, and a store invalidating the
    /// block *during* the step is caught by the next `fetch`'s id check.
    #[inline]
    pub fn retire(&mut self, next_pc: u64) {
        let Some(cur) = self.cursor.as_mut() else {
            return;
        };
        let next = cur.pos + 1;
        if next < cur.len {
            if next_pc == cur.base + 4 * next as u64 {
                cur.pos = next;
            } else {
                self.cursor = None;
                self.stats.early_exits += 1;
            }
        } else {
            self.cursor = None;
            self.stats.completed += 1;
        }
    }

    /// Drops the cursor at a non-replayable point (MMIO access, skip
    /// synchronization), counting an early exit if a block was active.
    pub fn exit_early(&mut self) {
        if self.cursor.take().is_some() {
            self.stats.early_exits += 1;
        }
    }

    /// Invalidates every cached block whose `[base, base + 4·len)` range
    /// intersects the stored range `[addr, addr + len)`.
    ///
    /// Candidate bases are the word-aligned addresses in
    /// `(addr - 4·MAX_BLOCK_LEN, addr + len)`, probed through the
    /// direct-mapped index — at most `MAX_BLOCK_LEN + 2` slots for the
    /// `len ≤ 8` stores the ISA produces, and zero for the common case of
    /// stores outside the code watermarks.
    pub fn invalidate_store(&mut self, addr: u64, len: u64) {
        if !self.enabled || len == 0 {
            return;
        }
        if addr >= self.code_hi || addr.saturating_add(len) <= self.code_lo {
            return;
        }
        let first = addr.saturating_sub(4 * MAX_BLOCK_LEN as u64 - 1);
        let last = addr + len - 1;
        for word in (first >> 2)..=(last >> 2) {
            let base = word << 2;
            let slot = (word as usize) & (BLOCK_SLOTS - 1);
            let hit = self.slots[slot]
                .as_ref()
                .is_some_and(|b| b.base == base && b.base + 4 * b.uops.len() as u64 > addr);
            if hit {
                self.slots[slot] = None;
                self.stats.store_invalidations += 1;
            }
        }
    }

    /// Drops every block and the cursor (fence, journal revert).
    pub fn flush(&mut self) {
        self.cursor = None;
        if self.next_id > 0 {
            self.slots.iter_mut().for_each(|s| *s = None);
            self.code_lo = u64::MAX;
            self.code_hi = 0;
        }
        self.stats.flushes += 1;
    }

    /// Enables or disables block execution. Disabling drops everything, so
    /// a re-enable never observes pre-disable blocks.
    pub fn set_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.cursor = None;
            self.slots.iter_mut().for_each(|s| *s = None);
            self.code_lo = u64::MAX;
            self.code_hi = 0;
        }
        self.enabled = enabled;
    }

    /// Whether block execution is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The counters.
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }

    /// Built-block length distribution: `len_counts()[n]` is the number of
    /// block builds that produced `n` micro-ops.
    pub fn len_counts(&self) -> &[u64; MAX_BLOCK_LEN + 1] {
        &self.lens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_isa::decode;

    const PC: u64 = 0x8000_0000;

    fn nop_insn() -> (u32, Insn) {
        let raw = 0x0000_0013; // addi x0, x0, 0
        (raw, decode(raw))
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        assert_eq!(c.lookup(PC, raw), None);
        c.insert(PC, raw, insn);
        assert_eq!(c.lookup(PC, raw), Some(insn));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn raw_mismatch_is_a_miss() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        c.insert(PC, raw, insn);
        assert_eq!(c.lookup(PC, raw ^ 0x100), None);
    }

    #[test]
    fn aliased_pc_is_a_miss() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        c.insert(PC, raw, insn);
        // Same direct-mapped slot, different pc.
        let alias = PC + (SLOTS as u64) * 4;
        assert_eq!(c.lookup(alias, raw), None);
    }

    #[test]
    fn store_invalidates_intersecting_lines_only() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        for i in 0..4 {
            c.insert(PC + 4 * i, raw, insn);
        }
        // An 8-byte store over the middle two instructions.
        c.invalidate_store(PC + 4, 8);
        assert_eq!(c.lookup(PC, raw), Some(insn));
        assert_eq!(c.lookup(PC + 4, raw), None);
        assert_eq!(c.lookup(PC + 8, raw), None);
        assert_eq!(c.lookup(PC + 12, raw), Some(insn));
        assert_eq!(c.stats().store_invalidations, 2);
    }

    #[test]
    fn unaligned_store_catches_partial_overlap() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        c.insert(PC, raw, insn);
        // A one-byte store into the line's last byte.
        c.invalidate_store(PC + 3, 1);
        assert_eq!(c.lookup(PC, raw), None);
    }

    #[test]
    fn flush_and_disable_drop_everything() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        c.insert(PC, raw, insn);
        c.flush();
        assert_eq!(c.lookup(PC, raw), None);
        c.insert(PC, raw, insn);
        c.set_enabled(false);
        assert_eq!(c.lookup(PC, raw), None, "disabled lookups never hit");
        c.set_enabled(true);
        assert_eq!(c.lookup(PC, raw), None, "re-enable starts cold");
    }

    // Block cache --------------------------------------------------------

    use difftest_isa::{encode, Reg};

    /// Three ALU ops and a terminating branch at the RAM base.
    fn block_mem() -> Memory {
        let mut mem = Memory::new();
        mem.load_words(
            Memory::RAM_BASE,
            &[
                encode::addi(Reg::A0, Reg::A0, 1),
                encode::addi(Reg::A1, Reg::A1, 2),
                encode::add(Reg::A2, Reg::A0, Reg::A1),
                encode::beq(Reg::ZERO, Reg::ZERO, -12),
            ],
        );
        mem
    }

    /// Walks the cursor through the block at `pc` and returns the ops seen.
    fn walk(c: &mut BlockCache, mem: &Memory, pc: u64, steps: usize) -> Vec<difftest_isa::Op> {
        let mut ops = Vec::new();
        let mut pc = pc;
        for _ in 0..steps {
            let u = c.fetch(pc, mem).expect("in-page fetch");
            ops.push(u.insn.op);
            pc += 4; // every op in block_mem falls through in this walk
            c.retire(pc);
        }
        ops
    }

    #[test]
    fn build_terminates_at_control_flow_and_reentry_hits() {
        let mem = block_mem();
        let mut c = BlockCache::default();
        walk(&mut c, &mem, Memory::RAM_BASE, 4);
        let s = c.stats();
        assert_eq!((s.misses, s.hits), (1, 0), "first pass builds once");
        assert_eq!(c.len_counts()[4], 1, "branch ends the 4-op block");
        // Second entry revalidates by fingerprint and dispatches from cache.
        walk(&mut c, &mem, Memory::RAM_BASE, 4);
        let s = c.stats();
        assert_eq!((s.misses, s.hits), (1, 1));
        assert_eq!(s.uop_steps, 8);
        assert_eq!(s.completed, 2, "retire at the final op completes");
    }

    #[test]
    fn entry_fingerprint_catches_out_of_band_patch() {
        let mut mem = block_mem();
        let mut c = BlockCache::default();
        walk(&mut c, &mem, Memory::RAM_BASE, 4);
        // Patch the third word *without* the invalidate_store hook — the
        // belt-and-suspenders path the fingerprint must catch.
        mem.write(Memory::RAM_BASE + 8, 4, encode::nop() as u64);
        let u = c.fetch(Memory::RAM_BASE, &mem).unwrap();
        assert_eq!(u.insn.op, difftest_isa::Op::Addi);
        assert_eq!(c.stats().misses, 2, "stale fingerprint forces a rebuild");
        // The rebuilt block sees the patched word.
        c.retire(Memory::RAM_BASE + 4);
        c.retire(Memory::RAM_BASE + 8);
        let u = c.fetch(Memory::RAM_BASE + 8, &mem).unwrap();
        assert_eq!(u.insn.op, difftest_isa::Op::Addi); // nop decodes as addi
        assert_eq!(u.insn.raw, encode::nop());
    }

    #[test]
    fn store_invalidates_intersecting_block_and_cursor_exits() {
        let mem = block_mem();
        let mut c = BlockCache::default();
        // Step one op in, leaving the cursor mid-block.
        let u = c.fetch(Memory::RAM_BASE, &mem).unwrap();
        assert_eq!(u.insn.op, difftest_isa::Op::Addi);
        c.retire(Memory::RAM_BASE + 4);
        // A store into the block's third word drops the block.
        c.invalidate_store(Memory::RAM_BASE + 8, 4);
        assert_eq!(c.stats().store_invalidations, 1);
        // The cursor notices at its next validation and rebuilds mid-run.
        let u = c.fetch(Memory::RAM_BASE + 4, &mem).unwrap();
        assert_eq!(u.insn.op, difftest_isa::Op::Addi);
        let s = c.stats();
        assert_eq!(s.misses, 2, "mid-block re-entry built a new block");
        assert_eq!(c.len_counts()[3], 1, "rebuilt block starts at word 1");
    }

    #[test]
    fn stores_outside_code_watermarks_are_rejected_cheaply() {
        let mem = block_mem();
        let mut c = BlockCache::default();
        walk(&mut c, &mem, Memory::RAM_BASE, 4);
        // Far-away data stores must not count invalidations.
        c.invalidate_store(Memory::RAM_BASE + 0x10_0000, 8);
        c.invalidate_store(Memory::RAM_BASE - 0x1000, 8);
        assert_eq!(c.stats().store_invalidations, 0);
        // An intersecting one still fires.
        c.invalidate_store(Memory::RAM_BASE + 2, 1);
        assert_eq!(c.stats().store_invalidations, 1);
    }

    #[test]
    fn blocks_never_cross_a_page_boundary() {
        let mut mem = Memory::new();
        let base = Memory::RAM_BASE + 0x1000 - 8; // two words before page end
        mem.load_words(base, &[encode::nop(); 6]);
        let mut c = BlockCache::default();
        c.fetch(base, &mem).unwrap();
        assert_eq!(c.len_counts()[2], 1, "build stops at the page boundary");
    }

    #[test]
    fn flush_drops_blocks_and_disable_starts_cold() {
        let mem = block_mem();
        let mut c = BlockCache::default();
        walk(&mut c, &mem, Memory::RAM_BASE, 4);
        c.flush();
        assert_eq!(c.stats().flushes, 1);
        walk(&mut c, &mem, Memory::RAM_BASE, 4);
        assert_eq!(c.stats().misses, 2, "flush forces a rebuild");
        c.set_enabled(false);
        assert!(c.fetch(Memory::RAM_BASE, &mem).is_none());
        c.set_enabled(true);
        c.fetch(Memory::RAM_BASE, &mem).unwrap();
        assert_eq!(c.stats().misses, 3, "re-enable starts cold");
    }
}
