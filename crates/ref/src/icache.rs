//! Direct-mapped pre-decoded instruction cache for the REF model.
//!
//! `RefModel::step` fetches and decodes the instruction at the current PC
//! on every call; on the host hot path the decode is pure overhead for the
//! overwhelmingly common case of re-executing already-seen code. The cache
//! stores the decoded [`Insn`] keyed by `(pc, raw_bits)` — the raw word is
//! re-fetched and compared on every hit, so a stale entry can never
//! produce a wrong instruction: `decode` is a pure function of the raw
//! bits, and a raw mismatch is simply a miss.
//!
//! Invalidation is still performed eagerly (rather than relying on the
//! key alone) so hit-rate accounting stays honest and slots free up:
//!
//! - a store that intersects a cached line's `[pc, pc+4)` window
//!   invalidates that line ([`DecodeCache::invalidate_store`]),
//! - `fence`/`fence.i` (and any future SFENCE decoding) flushes the whole
//!   cache (the RISC-V contract for making stores visible to fetch),
//! - a journal revert flushes too — compensation entries can restore old
//!   code bytes without going through the store path.

use difftest_isa::Insn;
use serde::{Deserialize, Serialize};

/// Entries in the direct-mapped array. 4096 × ~48 B keeps the table well
/// inside L2 while covering the hot loops of every workload preset.
const SLOTS: usize = 4096;

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Entry {
    pc: u64,
    raw: u32,
    insn: Insn,
}

/// Hit/miss/invalidation counters, exposed for tests and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to `decode`.
    pub misses: u64,
    /// Lines invalidated by intersecting stores.
    pub store_invalidations: u64,
    /// Whole-cache flushes (fence, revert).
    pub flushes: u64,
}

/// The cache itself. See the module docs for the coherence rules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecodeCache {
    slots: Vec<Option<Entry>>,
    enabled: bool,
    stats: DecodeCacheStats,
}

impl Default for DecodeCache {
    fn default() -> Self {
        DecodeCache {
            slots: vec![None; SLOTS],
            enabled: true,
            stats: DecodeCacheStats::default(),
        }
    }
}

impl DecodeCache {
    #[inline]
    fn index(pc: u64) -> usize {
        ((pc >> 2) as usize) & (SLOTS - 1)
    }

    /// Looks up the decoded instruction for `(pc, raw)`.
    #[inline]
    pub fn lookup(&mut self, pc: u64, raw: u32) -> Option<Insn> {
        if !self.enabled {
            return None;
        }
        match self.slots[Self::index(pc)] {
            Some(e) if e.pc == pc && e.raw == raw => {
                self.stats.hits += 1;
                Some(e.insn)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Caches a freshly decoded instruction.
    #[inline]
    pub fn insert(&mut self, pc: u64, raw: u32, insn: Insn) {
        if self.enabled {
            self.slots[Self::index(pc)] = Some(Entry { pc, raw, insn });
        }
    }

    /// Invalidates every cached line whose 4-byte fetch window intersects
    /// the stored range `[addr, addr + len)`.
    ///
    /// A line for `pc` intersects iff `pc + 4 > addr && pc < addr + len`,
    /// i.e. `pc ∈ [addr - 3, addr + len - 1]` — at most `(len + 6) / 4 + 1`
    /// direct-mapped slots for the `len ≤ 8` stores the ISA produces.
    pub fn invalidate_store(&mut self, addr: u64, len: u64) {
        if !self.enabled || len == 0 {
            return;
        }
        let first = addr.saturating_sub(3);
        let last = addr + len - 1;
        for word in (first >> 2)..=(last >> 2) {
            let slot = &mut self.slots[(word as usize) & (SLOTS - 1)];
            if let Some(e) = slot {
                if e.pc + 4 > addr && e.pc < addr + len {
                    *slot = None;
                    self.stats.store_invalidations += 1;
                }
            }
        }
    }

    /// Drops every entry (fence, journal revert).
    pub fn flush(&mut self) {
        if self.slots.iter().any(Option::is_some) {
            self.slots.iter_mut().for_each(|s| *s = None);
        }
        self.stats.flushes += 1;
    }

    /// Enables or disables the cache. Disabling flushes, so a re-enable
    /// never observes pre-disable entries.
    pub fn set_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.slots.iter_mut().for_each(|s| *s = None);
        }
        self.enabled = enabled;
    }

    /// Whether lookups are served at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The counters.
    pub fn stats(&self) -> DecodeCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_isa::decode;

    const PC: u64 = 0x8000_0000;

    fn nop_insn() -> (u32, Insn) {
        let raw = 0x0000_0013; // addi x0, x0, 0
        (raw, decode(raw))
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        assert_eq!(c.lookup(PC, raw), None);
        c.insert(PC, raw, insn);
        assert_eq!(c.lookup(PC, raw), Some(insn));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn raw_mismatch_is_a_miss() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        c.insert(PC, raw, insn);
        assert_eq!(c.lookup(PC, raw ^ 0x100), None);
    }

    #[test]
    fn aliased_pc_is_a_miss() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        c.insert(PC, raw, insn);
        // Same direct-mapped slot, different pc.
        let alias = PC + (SLOTS as u64) * 4;
        assert_eq!(c.lookup(alias, raw), None);
    }

    #[test]
    fn store_invalidates_intersecting_lines_only() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        for i in 0..4 {
            c.insert(PC + 4 * i, raw, insn);
        }
        // An 8-byte store over the middle two instructions.
        c.invalidate_store(PC + 4, 8);
        assert_eq!(c.lookup(PC, raw), Some(insn));
        assert_eq!(c.lookup(PC + 4, raw), None);
        assert_eq!(c.lookup(PC + 8, raw), None);
        assert_eq!(c.lookup(PC + 12, raw), Some(insn));
        assert_eq!(c.stats().store_invalidations, 2);
    }

    #[test]
    fn unaligned_store_catches_partial_overlap() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        c.insert(PC, raw, insn);
        // A one-byte store into the line's last byte.
        c.invalidate_store(PC + 3, 1);
        assert_eq!(c.lookup(PC, raw), None);
    }

    #[test]
    fn flush_and_disable_drop_everything() {
        let mut c = DecodeCache::default();
        let (raw, insn) = nop_insn();
        c.insert(PC, raw, insn);
        c.flush();
        assert_eq!(c.lookup(PC, raw), None);
        c.insert(PC, raw, insn);
        c.set_enabled(false);
        assert_eq!(c.lookup(PC, raw), None, "disabled lookups never hit");
        c.set_enabled(true);
        assert_eq!(c.lookup(PC, raw), None, "re-enable starts cold");
    }
}
