//! Sparse physical memory shared (by value) between the DUT and REF models.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse byte-addressable physical memory.
///
/// The RAM window starts at [`Memory::RAM_BASE`]; everything below it is the
/// MMIO hole handled by the device models (on the DUT side) or synchronized
/// from the DUT (on the REF side). Pages are allocated lazily on first write,
/// so multi-megabyte address spaces cost only what the workload touches.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Memory {
    pages: HashMap<u64, Vec<u8>>,
}

impl Memory {
    /// Base address of the RAM window (matches the XiangShan/NutShell map).
    pub const RAM_BASE: u64 = 0x8000_0000;
    /// Size of the RAM window.
    pub const RAM_SIZE: u64 = 0x1000_0000; // 256 MiB
    /// Size of one lazily-allocated page (the checkpoint codec's unit).
    pub const PAGE_SIZE: usize = PAGE_SIZE;

    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Returns `true` if `addr` falls in the MMIO hole (below RAM).
    #[inline]
    pub fn is_mmio(addr: u64) -> bool {
        addr < Self::RAM_BASE
    }

    /// Returns `true` if `addr..addr+len` lies fully inside the RAM window.
    #[inline]
    pub fn in_ram(addr: u64, len: u64) -> bool {
        addr >= Self::RAM_BASE && addr.saturating_add(len) <= Self::RAM_BASE + Self::RAM_SIZE
    }

    /// Reads one byte (unmapped bytes read as zero).
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let page = addr >> PAGE_BITS;
        match self.pages.get(&page) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = addr >> PAGE_BITS;
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| vec![0u8; PAGE_SIZE]);
        p[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `len <= 8` bytes little-endian.
    ///
    /// The common case — the access stays inside one 4 KiB page — costs a
    /// single page lookup plus a fixed-size copy; only accesses straddling
    /// a page boundary fall back to the per-byte path.
    pub fn read(&self, addr: u64, len: usize) -> u64 {
        debug_assert!(len <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + len <= PAGE_SIZE {
            let Some(p) = self.pages.get(&(addr >> PAGE_BITS)) else {
                return 0;
            };
            let mut buf = [0u8; 8];
            buf[..len].copy_from_slice(&p[off..off + len]);
            return u64::from_le_bytes(buf);
        }
        let mut v = 0u64;
        for i in 0..len {
            v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `len <= 8` bytes of `value` little-endian.
    ///
    /// Same single-page fast path as [`read`](Self::read).
    pub fn write(&mut self, addr: u64, len: usize, value: u64) {
        debug_assert!(len <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + len <= PAGE_SIZE {
            let p = self
                .pages
                .entry(addr >> PAGE_BITS)
                .or_insert_with(|| vec![0u8; PAGE_SIZE]);
            p[off..off + len].copy_from_slice(&value.to_le_bytes()[..len]);
            return;
        }
        for i in 0..len {
            self.write_u8(addr + i as u64, (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 32-bit instruction word.
    #[inline]
    pub fn fetch(&self, addr: u64) -> u32 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + 4 <= PAGE_SIZE {
            return match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                None => 0,
            };
        }
        self.read(addr, 4) as u32
    }

    /// Borrows `len` bytes at `addr` when the whole range lies inside a
    /// single resident page; `None` if the page is absent or the range
    /// straddles a page boundary. The block cache uses this to fingerprint
    /// a block's code bytes in one pass without copying.
    #[inline]
    pub fn page_slice(&self, addr: u64, len: usize) -> Option<&[u8]> {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + len > PAGE_SIZE {
            return None;
        }
        self.pages
            .get(&(addr >> PAGE_BITS))
            .map(|p| &p[off..off + len])
    }

    /// Bytes remaining in `addr`'s backing page, from `addr` to the page
    /// end. Block builds use this to stop before a page boundary.
    #[inline]
    pub fn page_remaining(addr: u64) -> usize {
        PAGE_SIZE - ((addr as usize) & (PAGE_SIZE - 1))
    }

    /// Loads a program image of 32-bit words starting at `base`.
    pub fn load_words(&mut self, base: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write(base + 4 * i as u64, 4, *w as u64);
        }
    }

    /// Loads raw bytes starting at `base`.
    pub fn load_bytes(&mut self, base: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(base + i as u64, *b);
        }
    }

    /// Number of resident (allocated) pages; used by tests and stats.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident pages as `(base_address, bytes)` pairs, sorted by address.
    ///
    /// The serde shims are no-ops, so the checkpoint codec
    /// ([`crate::checkpoint`]) walks pages itself; sorting makes the byte
    /// image deterministic for a given memory state.
    pub fn page_images(&self) -> Vec<(u64, &[u8])> {
        let mut pages: Vec<(u64, &[u8])> = self
            .pages
            .iter()
            .map(|(idx, bytes)| (idx << PAGE_BITS, bytes.as_slice()))
            .collect();
        pages.sort_unstable_by_key(|&(base, _)| base);
        pages
    }

    /// Installs one full page at `base` (which must be page-aligned and
    /// `bytes` exactly [`Memory::PAGE_SIZE`] long) — the checkpoint-restore
    /// inverse of [`page_images`](Self::page_images).
    pub fn install_page(&mut self, base: u64, bytes: &[u8]) {
        debug_assert_eq!(base & (PAGE_SIZE as u64 - 1), 0, "unaligned page base");
        debug_assert_eq!(bytes.len(), PAGE_SIZE, "short page image");
        self.pages.insert(base >> PAGE_BITS, bytes.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0x8000_0000, 8), 0);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write(0x8000_0100, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x8000_0100, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x8000_0100, 4), 0x5566_7788);
        assert_eq!(m.read(0x8000_0104, 4), 0x1122_3344);
        assert_eq!(m.read_u8(0x8000_0100), 0x88);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x8000_0ffe; // spans a 4 KiB page boundary
        m.write(addr, 4, 0xaabb_ccdd);
        assert_eq!(m.read(addr, 4), 0xaabb_ccdd);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn mmio_classification() {
        assert!(Memory::is_mmio(0x1000_0000));
        assert!(!Memory::is_mmio(0x8000_0000));
        assert!(Memory::in_ram(0x8000_0000, 8));
        assert!(!Memory::in_ram(0x8000_0000 + Memory::RAM_SIZE, 1));
    }

    #[test]
    fn fast_path_matches_per_byte_around_page_boundary() {
        let mut m = Memory::new();
        let boundary = Memory::RAM_BASE + PAGE_SIZE as u64;
        for i in 0..32u64 {
            m.write_u8(boundary - 16 + i, (0xa0 + i) as u8);
        }
        for start in 0..24u64 {
            let addr = boundary - 16 + start;
            for len in 1..=8usize {
                let mut per_byte = 0u64;
                for i in 0..len {
                    per_byte |= (m.read_u8(addr + i as u64) as u64) << (8 * i);
                }
                assert_eq!(m.read(addr, len), per_byte, "addr {addr:#x} len {len}");
            }
            assert_eq!(m.fetch(addr), m.read(addr, 4) as u32, "fetch at {addr:#x}");
        }
        // Writes through both paths agree too.
        let mut a = Memory::new();
        let mut b = Memory::new();
        for start in 0..12u64 {
            let addr = boundary - 6 + start;
            let v = 0x0102_0304_0506_0708u64.rotate_left(start as u32 * 8);
            a.write(addr, 8, v);
            for i in 0..8 {
                b.write_u8(addr + i as u64, (v >> (8 * i)) as u8);
            }
        }
        for i in 0..64u64 {
            let addr = boundary - 32 + i;
            assert_eq!(a.read_u8(addr), b.read_u8(addr), "byte {addr:#x}");
        }
    }

    #[test]
    fn load_words_places_instructions() {
        let mut m = Memory::new();
        m.load_words(Memory::RAM_BASE, &[0x13, 0x9302_0000]);
        assert_eq!(m.fetch(Memory::RAM_BASE), 0x13);
        assert_eq!(m.fetch(Memory::RAM_BASE + 4), 0x9302_0000);
    }
}
