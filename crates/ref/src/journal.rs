//! Compensation log for lightweight state revert (paper §4.4).
//!
//! Snapshotting the whole REF at every checkpoint would be prohibitively
//! expensive, so Replay records only the *old values* of mutations between
//! consecutive checkpoints. Reverting writes the log back in reverse order.

use difftest_isa::csr::CsrIndex;
use difftest_isa::{FReg, Reg};
use serde::{Deserialize, Serialize};

use crate::{ArchState, Memory};

/// One recorded mutation: the value a location held *before* the write.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// Previous program counter.
    Pc(u64),
    /// Previous value of an integer register.
    Xreg(Reg, u64),
    /// Previous value of a floating-point register.
    Freg(FReg, u64),
    /// Previous value of a CSR.
    Csr(CsrIndex, u64),
    /// Previous bytes at a memory location.
    Mem {
        /// Byte address of the overwritten range.
        addr: u64,
        /// Width in bytes.
        len: u8,
        /// The old little-endian value.
        old: u64,
    },
    /// Previous LR/SC reservation.
    Reservation(Option<u64>),
    /// Previous retired-instruction count.
    Instret(u64),
}

/// A compensation log with a stack of checkpoints.
///
/// The log is disabled by default; the co-simulation engine enables it when
/// Replay support is requested. While disabled, [`Journal::record`] is a
/// no-op so the fast path costs one branch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Journal {
    entries: Vec<JournalEntry>,
    checkpoints: Vec<usize>,
    enabled: bool,
}

impl Journal {
    /// Creates a disabled journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns `true` when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a mutation's old value (no-op while disabled).
    #[inline]
    pub fn record(&mut self, entry: JournalEntry) {
        if self.enabled {
            self.entries.push(entry);
        }
    }

    /// Pushes a checkpoint marking the current log position.
    pub fn checkpoint(&mut self) {
        self.checkpoints.push(self.entries.len());
    }

    /// Number of live checkpoints.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Returns `true` if a [`revert_into`](Self::revert_into) would have a
    /// checkpoint to consume. Callers use this to skip revert side effects
    /// (cache flushes) when a revert is a guaranteed no-op.
    pub fn has_checkpoint(&self) -> bool {
        !self.checkpoints.is_empty()
    }

    /// Number of recorded entries (for stats and tests).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The recorded entries, oldest first (tests compare whole journals).
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Returns `true` when no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reverts `state` and `mem` to the most recent checkpoint, consuming it.
    ///
    /// Returns `false` (and does nothing) if no checkpoint exists.
    pub fn revert_into(&mut self, state: &mut ArchState, mem: &mut Memory) -> bool {
        let Some(mark) = self.checkpoints.pop() else {
            return false;
        };
        for entry in self.entries.drain(mark..).rev() {
            match entry {
                JournalEntry::Pc(old) => state.set_pc(old),
                JournalEntry::Xreg(r, old) => state.set_xreg(r, old),
                JournalEntry::Freg(r, old) => state.set_freg(r, old),
                JournalEntry::Csr(c, old) => state.set_csr(c, old),
                JournalEntry::Mem { addr, len, old } => mem.write(addr, len as usize, old),
                JournalEntry::Reservation(old) => {
                    state.set_reservation(old);
                }
                JournalEntry::Instret(old) => state.set_instret(old),
            }
        }
        true
    }

    /// Keeps only the most recent `keep` checkpoints, discarding older log
    /// prefix so memory stays bounded during long runs.
    ///
    /// `prune(0)` drops every checkpoint — and, since nothing is revertible
    /// without one, the whole log (including entries recorded after the
    /// newest checkpoint).
    pub fn prune(&mut self, keep: usize) {
        if self.checkpoints.len() <= keep {
            return;
        }
        if keep == 0 {
            self.checkpoints.clear();
            self.entries.clear();
            return;
        }
        let drop_count = self.checkpoints.len() - keep;
        let cut = self.checkpoints[drop_count];
        self.checkpoints.drain(..drop_count);
        self.entries.drain(..cut);
        for c in &mut self.checkpoints {
            *c -= cut;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_records_nothing() {
        let mut j = Journal::new();
        j.record(JournalEntry::Pc(4));
        assert!(j.is_empty());
    }

    #[test]
    fn revert_restores_in_reverse_order() {
        let mut j = Journal::new();
        j.set_enabled(true);
        let mut state = ArchState::new(0x100);
        let mut mem = Memory::new();

        j.checkpoint();
        // Two writes to the same register: revert must land on the first old
        // value, which requires reverse-order application.
        j.record(JournalEntry::Xreg(Reg::A0, 0));
        state.set_xreg(Reg::A0, 1);
        j.record(JournalEntry::Xreg(Reg::A0, 1));
        state.set_xreg(Reg::A0, 2);
        j.record(JournalEntry::Mem {
            addr: Memory::RAM_BASE,
            len: 8,
            old: 0,
        });
        mem.write(Memory::RAM_BASE, 8, 77);

        assert!(j.revert_into(&mut state, &mut mem));
        assert_eq!(state.xreg(Reg::A0), 0);
        assert_eq!(mem.read(Memory::RAM_BASE, 8), 0);
        assert!(j.is_empty());
    }

    #[test]
    fn revert_without_checkpoint_is_noop() {
        let mut j = Journal::new();
        let mut state = ArchState::new(0);
        let mut mem = Memory::new();
        assert!(!j.revert_into(&mut state, &mut mem));
    }

    #[test]
    fn prune_keeps_recent_checkpoints_valid() {
        let mut j = Journal::new();
        j.set_enabled(true);
        let mut state = ArchState::new(0);
        let mut mem = Memory::new();

        for round in 0..4u64 {
            j.checkpoint();
            j.record(JournalEntry::Xreg(Reg::A1, round));
            state.set_xreg(Reg::A1, round + 1);
        }
        j.prune(2);
        assert_eq!(j.checkpoint_count(), 2);
        // Reverting twice walks back the two most recent rounds.
        assert!(j.revert_into(&mut state, &mut mem));
        assert_eq!(state.xreg(Reg::A1), 3);
        assert!(j.revert_into(&mut state, &mut mem));
        assert_eq!(state.xreg(Reg::A1), 2);
        assert!(!j.revert_into(&mut state, &mut mem));
    }

    /// Regression: `prune(0)` used to index `checkpoints[len]` and panic.
    /// It must instead drain everything — checkpoints, the log prefix they
    /// guard, *and* the post-checkpoint tail — leaving nothing revertible.
    #[test]
    fn prune_zero_drains_everything() {
        let mut j = Journal::new();
        j.set_enabled(true);
        let mut state = ArchState::new(0);
        let mut mem = Memory::new();

        for round in 0..3u64 {
            j.checkpoint();
            j.record(JournalEntry::Xreg(Reg::A1, round));
            state.set_xreg(Reg::A1, round + 1);
        }
        // Entries after the newest checkpoint go too: with zero checkpoints
        // left they could never be replayed.
        j.record(JournalEntry::Pc(0x1234));

        j.prune(0);
        assert_eq!(j.checkpoint_count(), 0);
        assert!(j.is_empty());
        assert!(!j.revert_into(&mut state, &mut mem));
        assert_eq!(state.xreg(Reg::A1), 3, "prune must not touch state");

        // The journal keeps working after a full drain.
        j.checkpoint();
        j.record(JournalEntry::Xreg(Reg::A1, 3));
        state.set_xreg(Reg::A1, 9);
        assert!(j.revert_into(&mut state, &mut mem));
        assert_eq!(state.xreg(Reg::A1), 3);

        // prune(0) on an already-empty journal is a no-op, not a panic.
        j.prune(0);
        assert_eq!(j.checkpoint_count(), 0);
    }
}
