//! Pure RV64 instruction semantics.
//!
//! [`execute`] evaluates one instruction against an immutable view of the
//! architectural state and memory, and returns an [`Effect`] describing every
//! state mutation the instruction performs. The caller (the reference model,
//! or the DUT's commit stage) applies the effect — possibly through a
//! compensation journal, possibly with injected faults.
//!
//! Keeping semantics pure gives three things the project relies on:
//! deterministic replay, journaled application for checkpoint/revert, and a
//! single place where the DUT and REF semantics are defined (the DUT's
//! *microarchitecture* and its injected bugs provide the divergence that
//! co-simulation detects).

use difftest_isa::csr::CsrIndex;
use difftest_isa::trap::{Exception, Trap};
use difftest_isa::{FReg, Insn, Op, Reg};
use serde::{Deserialize, Serialize};

use crate::{ArchState, Memory};

/// A memory write performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemWrite {
    /// Byte address of the write.
    pub addr: u64,
    /// Width in bytes (1, 2, 4 or 8).
    pub len: u8,
    /// The value written (low `len` bytes significant).
    pub value: u64,
}

/// A memory read performed by an instruction (informational; the loaded
/// value appears in the register-write field of the effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRead {
    /// Byte address of the read.
    pub addr: u64,
    /// Width in bytes (1, 2, 4 or 8).
    pub len: u8,
}

/// Every architectural mutation one instruction performs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Effect {
    /// The PC of the next instruction.
    pub next_pc: u64,
    /// Integer register write, if any.
    pub xw: Option<(Reg, u64)>,
    /// Floating-point register write, if any.
    pub fw: Option<(FReg, u64)>,
    /// Up to two CSR writes (CSR instructions write one; `mret` writes
    /// `mstatus` and consumes `mepc`).
    pub csrw: [Option<(CsrIndex, u64)>; 2],
    /// Memory write, if any.
    pub memw: Option<MemWrite>,
    /// Memory read, if any.
    pub memr: Option<MemRead>,
    /// `Some(new)` replaces the LR/SC reservation.
    pub set_reservation: Option<Option<u64>>,
    /// The memory access (if any) touched the MMIO hole. For loads the
    /// effect's register value is a placeholder; the DUT resolves it against
    /// its devices and the REF must be synchronized via `skip_next`.
    pub mmio: bool,
    /// Exception raised; when set, no other field applies.
    pub trap: Option<Trap>,
    /// A conditional branch evaluated taken.
    pub branch_taken: bool,
}

impl Effect {
    fn fall_through(pc: u64) -> Effect {
        Effect {
            next_pc: pc.wrapping_add(4),
            ..Effect::default()
        }
    }

    fn trap(t: Trap) -> Effect {
        Effect {
            trap: Some(t),
            ..Effect::default()
        }
    }
}

#[inline]
fn sext(value: u64, len: u8) -> u64 {
    let bits = len as u32 * 8;
    if bits == 64 {
        value
    } else {
        let shift = 64 - bits;
        (((value << shift) as i64) >> shift) as u64
    }
}

fn csr_read(state: &ArchState, addr: u16) -> Result<(CsrIndex, u64), Trap> {
    match CsrIndex::from_address(addr) {
        Some(c) => Ok((c, state.csr(c))),
        None => Err(Trap::Exception(Exception::IllegalInstr, 0)),
    }
}

/// Evaluates `insn` at `state.pc()` against `state` and `mem`.
///
/// The returned [`Effect`] is not applied; callers decide how (journaled,
/// fault-injected, ...). MMIO loads return a zero placeholder value with
/// [`Effect::mmio`] set — resolving the device value is the caller's job.
pub fn execute(state: &ArchState, mem: &Memory, insn: &Insn) -> Effect {
    use Op::*;
    let pc = state.pc();
    let rs1 = state.xreg(insn.rs1);
    let rs2 = state.xreg(insn.rs2);
    let imm = insn.imm;
    let mut eff = Effect::fall_through(pc);

    macro_rules! wx {
        ($v:expr) => {
            // Writes to x0 are architectural no-ops and never reported as
            // register-write effects (the monitor would otherwise emit
            // commits whose destination value the REF cannot mirror).
            if !insn.rd.is_zero() {
                eff.xw = Some((insn.rd, $v));
            }
        };
    }

    match insn.op {
        Lui => wx!(imm as u64),
        Auipc => wx!(pc.wrapping_add(imm as u64)),
        Jal => {
            wx!(pc.wrapping_add(4));
            eff.next_pc = pc.wrapping_add(imm as u64);
        }
        Jalr => {
            wx!(pc.wrapping_add(4));
            eff.next_pc = rs1.wrapping_add(imm as u64) & !1;
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let taken = match insn.op {
                Beq => rs1 == rs2,
                Bne => rs1 != rs2,
                Blt => (rs1 as i64) < (rs2 as i64),
                Bge => (rs1 as i64) >= (rs2 as i64),
                Bltu => rs1 < rs2,
                Bgeu => rs1 >= rs2,
                _ => unreachable!(),
            };
            if taken {
                eff.next_pc = pc.wrapping_add(imm as u64);
                eff.branch_taken = true;
            }
        }
        Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu => {
            let addr = rs1.wrapping_add(imm as u64);
            let (len, signed) = match insn.op {
                Lb => (1, true),
                Lh => (2, true),
                Lw => (4, true),
                Ld => (8, true),
                Lbu => (1, false),
                Lhu => (2, false),
                Lwu => (4, false),
                _ => unreachable!(),
            };
            if Memory::is_mmio(addr) {
                eff.mmio = true;
                eff.memr = Some(MemRead { addr, len });
                wx!(0); // placeholder: resolved by the device / skip sync
            } else if !Memory::in_ram(addr, len as u64) {
                return Effect::trap(Trap::Exception(Exception::LoadAccessFault, addr));
            } else {
                let raw = mem.read(addr, len as usize);
                eff.memr = Some(MemRead { addr, len });
                wx!(if signed { sext(raw, len) } else { raw });
            }
        }
        Fld => {
            let addr = rs1.wrapping_add(imm as u64);
            if Memory::is_mmio(addr) {
                eff.mmio = true;
                eff.memr = Some(MemRead { addr, len: 8 });
                eff.fw = Some((insn.frd(), 0));
            } else if !Memory::in_ram(addr, 8) {
                return Effect::trap(Trap::Exception(Exception::LoadAccessFault, addr));
            } else {
                eff.memr = Some(MemRead { addr, len: 8 });
                eff.fw = Some((insn.frd(), mem.read(addr, 8)));
            }
        }
        Sb | Sh | Sw | Sd | Fsd => {
            let addr = rs1.wrapping_add(imm as u64);
            let (len, value) = match insn.op {
                Sb => (1, rs2),
                Sh => (2, rs2),
                Sw => (4, rs2),
                Sd => (8, rs2),
                Fsd => (8, state.freg(insn.frs2())),
                _ => unreachable!(),
            };
            if Memory::is_mmio(addr) {
                eff.mmio = true;
                eff.memw = Some(MemWrite { addr, len, value });
            } else if !Memory::in_ram(addr, len as u64) {
                return Effect::trap(Trap::Exception(Exception::StoreAccessFault, addr));
            } else {
                eff.memw = Some(MemWrite { addr, len, value });
            }
        }
        Addi => wx!(rs1.wrapping_add(imm as u64)),
        Slti => wx!(((rs1 as i64) < imm) as u64),
        Sltiu => wx!((rs1 < imm as u64) as u64),
        Xori => wx!(rs1 ^ imm as u64),
        Ori => wx!(rs1 | imm as u64),
        Andi => wx!(rs1 & imm as u64),
        Slli => wx!(rs1 << (imm as u32 & 63)),
        Srli => wx!(rs1 >> (imm as u32 & 63)),
        Srai => wx!(((rs1 as i64) >> (imm as u32 & 63)) as u64),
        Addiw => wx!(sext(rs1.wrapping_add(imm as u64) & 0xffff_ffff, 4)),
        Slliw => wx!(sext(((rs1 as u32) << (imm as u32 & 31)) as u64, 4)),
        Srliw => wx!(sext(((rs1 as u32) >> (imm as u32 & 31)) as u64, 4)),
        Sraiw => wx!(sext((((rs1 as i32) >> (imm as u32 & 31)) as u32) as u64, 4)),
        Add => wx!(rs1.wrapping_add(rs2)),
        Sub => wx!(rs1.wrapping_sub(rs2)),
        Sll => wx!(rs1 << (rs2 & 63)),
        Slt => wx!(((rs1 as i64) < (rs2 as i64)) as u64),
        Sltu => wx!((rs1 < rs2) as u64),
        Xor => wx!(rs1 ^ rs2),
        Srl => wx!(rs1 >> (rs2 & 63)),
        Sra => wx!(((rs1 as i64) >> (rs2 & 63)) as u64),
        Or => wx!(rs1 | rs2),
        And => wx!(rs1 & rs2),
        Addw => wx!(sext(rs1.wrapping_add(rs2) & 0xffff_ffff, 4)),
        Subw => wx!(sext(rs1.wrapping_sub(rs2) & 0xffff_ffff, 4)),
        Sllw => wx!(sext(((rs1 as u32) << (rs2 & 31)) as u64, 4)),
        Srlw => wx!(sext(((rs1 as u32) >> (rs2 & 31)) as u64, 4)),
        Sraw => wx!(sext((((rs1 as i32) >> (rs2 & 31)) as u32) as u64, 4)),
        Mul => wx!(rs1.wrapping_mul(rs2)),
        Mulh => wx!((((rs1 as i64 as i128) * (rs2 as i64 as i128)) >> 64) as u64),
        Mulhsu => wx!((((rs1 as i64 as i128) * (rs2 as u128 as i128)) >> 64) as u64),
        Mulhu => wx!((((rs1 as u128) * (rs2 as u128)) >> 64) as u64),
        Div => {
            let (a, b) = (rs1 as i64, rs2 as i64);
            wx!(if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                (a / b) as u64
            })
        }
        Divu => wx!(rs1.checked_div(rs2).unwrap_or(u64::MAX)),
        Rem => {
            let (a, b) = (rs1 as i64, rs2 as i64);
            wx!(if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                (a % b) as u64
            })
        }
        Remu => wx!(if rs2 == 0 { rs1 } else { rs1 % rs2 }),
        Mulw => wx!(sext((rs1 as u32).wrapping_mul(rs2 as u32) as u64, 4)),
        Divw => {
            let (a, b) = (rs1 as i32, rs2 as i32);
            wx!(sext(
                if b == 0 {
                    u32::MAX as u64
                } else if a == i32::MIN && b == -1 {
                    a as u32 as u64
                } else {
                    (a / b) as u32 as u64
                },
                4
            ))
        }
        Divuw => {
            let (a, b) = (rs1 as u32, rs2 as u32);
            wx!(sext(a.checked_div(b).unwrap_or(u32::MAX) as u64, 4))
        }
        Remw => {
            let (a, b) = (rs1 as i32, rs2 as i32);
            wx!(sext(
                if b == 0 {
                    a as u32 as u64
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    (a % b) as u32 as u64
                },
                4
            ))
        }
        Remuw => {
            let (a, b) = (rs1 as u32, rs2 as u32);
            wx!(sext(if b == 0 { a as u64 } else { (a % b) as u64 }, 4))
        }
        LrW | LrD => {
            let addr = rs1;
            let len: u8 = if insn.op == LrW { 4 } else { 8 };
            if !Memory::in_ram(addr, len as u64) {
                return Effect::trap(Trap::Exception(Exception::LoadAccessFault, addr));
            }
            let raw = mem.read(addr, len as usize);
            eff.memr = Some(MemRead { addr, len });
            wx!(sext(raw, len));
            eff.set_reservation = Some(Some(addr));
        }
        ScW | ScD => {
            let addr = rs1;
            let len: u8 = if insn.op == ScW { 4 } else { 8 };
            if !Memory::in_ram(addr, len as u64) {
                return Effect::trap(Trap::Exception(Exception::StoreAccessFault, addr));
            }
            if state.reservation() == Some(addr) {
                eff.memw = Some(MemWrite {
                    addr,
                    len,
                    value: rs2,
                });
                wx!(0);
            } else {
                wx!(1);
            }
            eff.set_reservation = Some(None);
        }
        AmoSwapW | AmoAddW | AmoXorW | AmoAndW | AmoOrW | AmoMinW | AmoMaxW | AmoMinuW
        | AmoMaxuW | AmoSwapD | AmoAddD | AmoXorD | AmoAndD | AmoOrD | AmoMinD | AmoMaxD
        | AmoMinuD | AmoMaxuD => {
            let op = insn.op;
            let addr = rs1;
            let len: u8 = match op {
                AmoSwapW | AmoAddW | AmoXorW | AmoAndW | AmoOrW | AmoMinW | AmoMaxW | AmoMinuW
                | AmoMaxuW => 4,
                _ => 8,
            };
            if !Memory::in_ram(addr, len as u64) {
                return Effect::trap(Trap::Exception(Exception::StoreAccessFault, addr));
            }
            let old = sext(mem.read(addr, len as usize), len);
            // W-form AMOs operate on the sign-extended 32-bit views.
            let (a, b) = if len == 4 {
                (old as i32 as i64, rs2 as i32 as i64)
            } else {
                (old as i64, rs2 as i64)
            };
            let new = match op {
                AmoSwapW | AmoSwapD => rs2,
                AmoAddW | AmoAddD => (a.wrapping_add(b)) as u64,
                AmoXorW | AmoXorD => (a ^ b) as u64,
                AmoAndW | AmoAndD => (a & b) as u64,
                AmoOrW | AmoOrD => (a | b) as u64,
                AmoMinW | AmoMinD => a.min(b) as u64,
                AmoMaxW | AmoMaxD => a.max(b) as u64,
                AmoMinuW | AmoMinuD => {
                    if len == 4 {
                        (old as u32).min(rs2 as u32) as u64
                    } else {
                        old.min(rs2)
                    }
                }
                AmoMaxuW | AmoMaxuD => {
                    if len == 4 {
                        (old as u32).max(rs2 as u32) as u64
                    } else {
                        old.max(rs2)
                    }
                }
                _ => unreachable!("is_amo covers exactly these"),
            };
            eff.memr = Some(MemRead { addr, len });
            eff.memw = Some(MemWrite {
                addr,
                len,
                value: new,
            });
            wx!(old);
        }
        Andn => wx!(rs1 & !rs2),
        Orn => wx!(rs1 | !rs2),
        Xnor => wx!(!(rs1 ^ rs2)),
        Min => wx!((rs1 as i64).min(rs2 as i64) as u64),
        Minu => wx!(rs1.min(rs2)),
        Max => wx!((rs1 as i64).max(rs2 as i64) as u64),
        Maxu => wx!(rs1.max(rs2)),
        Rol => wx!(rs1.rotate_left((rs2 & 63) as u32)),
        Ror => wx!(rs1.rotate_right((rs2 & 63) as u32)),
        Rori => wx!(rs1.rotate_right(imm as u32 & 63)),
        Clz => wx!(rs1.leading_zeros() as u64),
        Ctz => wx!(rs1.trailing_zeros() as u64),
        Cpop => wx!(rs1.count_ones() as u64),
        SextB => wx!(rs1 as u8 as i8 as i64 as u64),
        SextH => wx!(rs1 as u16 as i16 as i64 as u64),
        ZextH => wx!(rs1 as u16 as u64),
        Rev8 => wx!(rs1.swap_bytes()),
        OrcB => {
            let mut v = 0u64;
            for byte in 0..8 {
                if (rs1 >> (8 * byte)) & 0xff != 0 {
                    v |= 0xffu64 << (8 * byte);
                }
            }
            wx!(v)
        }
        Fence | Wfi => {}
        Ecall => return Effect::trap(Trap::Exception(Exception::EcallM, 0)),
        Ebreak => return Effect::trap(Trap::Exception(Exception::Breakpoint, pc)),
        Mret => {
            use difftest_isa::csr::mstatus;
            let status = state.csr(CsrIndex::Mstatus);
            let mpie = (status & mstatus::MPIE) != 0;
            let mut new_status = status;
            if mpie {
                new_status |= mstatus::MIE;
            } else {
                new_status &= !mstatus::MIE;
            }
            new_status |= mstatus::MPIE;
            eff.csrw[0] = Some((CsrIndex::Mstatus, new_status));
            eff.next_pc = state.csr(CsrIndex::Mepc);
        }
        Csrrw | Csrrs | Csrrc | Csrrwi | Csrrsi | Csrrci => {
            let (c, old) = match csr_read(state, insn.csr) {
                Ok(v) => v,
                Err(t) => return Effect::trap(t),
            };
            let operand = if matches!(insn.op, Csrrwi | Csrrsi | Csrrci) {
                insn.zimm()
            } else {
                rs1
            };
            let write = match insn.op {
                Csrrw | Csrrwi => Some(operand),
                Csrrs | Csrrsi => {
                    // No write when the mask operand is x0/zero-imm.
                    if matches!(insn.op, Csrrs) && insn.rs1.is_zero() || operand == 0 {
                        None
                    } else {
                        Some(old | operand)
                    }
                }
                Csrrc | Csrrci => {
                    if matches!(insn.op, Csrrc) && insn.rs1.is_zero() || operand == 0 {
                        None
                    } else {
                        Some(old & !operand)
                    }
                }
                _ => unreachable!(),
            };
            if let Some(v) = write {
                eff.csrw[0] = Some((c, v));
            }
            wx!(old);
        }
        FmvDX => eff.fw = Some((insn.frd(), rs1)),
        FmvXD => wx!(state.freg(insn.frs1())),
        FaddD | FsubD | FmulD | FdivD => {
            let a = f64::from_bits(state.freg(insn.frs1()));
            let b = f64::from_bits(state.freg(insn.frs2()));
            let r = match insn.op {
                FaddD => a + b,
                FsubD => a - b,
                FmulD => a * b,
                FdivD => a / b,
                _ => unreachable!(),
            };
            eff.fw = Some((insn.frd(), r.to_bits()));
        }
        Illegal => return Effect::trap(Trap::Exception(Exception::IllegalInstr, insn.raw as u64)),
    }

    eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_isa::{decode, encode};

    fn setup() -> (ArchState, Memory) {
        (ArchState::new(Memory::RAM_BASE), Memory::new())
    }

    fn run(state: &ArchState, mem: &Memory, word: u32) -> Effect {
        execute(state, mem, &decode(word))
    }

    #[test]
    fn addi_and_fall_through() {
        let (s, m) = setup();
        let e = run(&s, &m, encode::addi(Reg::A0, Reg::ZERO, -7));
        assert_eq!(e.xw, Some((Reg::A0, (-7i64) as u64)));
        assert_eq!(e.next_pc, Memory::RAM_BASE + 4);
        assert!(e.trap.is_none());
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A0, 1);
        let e = run(&s, &m, encode::beq(Reg::A0, Reg::ZERO, 16));
        assert!(!e.branch_taken);
        assert_eq!(e.next_pc, Memory::RAM_BASE + 4);
        let e = run(&s, &m, encode::bne(Reg::A0, Reg::ZERO, 16));
        assert!(e.branch_taken);
        assert_eq!(e.next_pc, Memory::RAM_BASE + 16);
    }

    #[test]
    fn load_sign_extension() {
        let (mut s, mut m) = setup();
        m.write(Memory::RAM_BASE + 0x100, 1, 0x80);
        s.set_xreg(Reg::A1, Memory::RAM_BASE + 0x100);
        let e = run(&s, &m, encode::lb(Reg::A0, Reg::A1, 0));
        assert_eq!(e.xw, Some((Reg::A0, 0xffff_ffff_ffff_ff80)));
        let e = run(&s, &m, encode::lbu(Reg::A0, Reg::A1, 0));
        assert_eq!(e.xw, Some((Reg::A0, 0x80)));
    }

    #[test]
    fn mmio_load_is_flagged() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, 0x1000_0000);
        let e = run(&s, &m, encode::lw(Reg::A0, Reg::A1, 0));
        assert!(e.mmio);
        assert_eq!(e.xw, Some((Reg::A0, 0)));
        assert!(e.trap.is_none());
    }

    #[test]
    fn out_of_range_faults() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, Memory::RAM_BASE + Memory::RAM_SIZE);
        let e = run(&s, &m, encode::lw(Reg::A0, Reg::A1, 0));
        assert!(matches!(
            e.trap,
            Some(Trap::Exception(Exception::LoadAccessFault, _))
        ));
        let e = run(&s, &m, encode::sw(Reg::A0, Reg::A1, 0));
        assert!(matches!(
            e.trap,
            Some(Trap::Exception(Exception::StoreAccessFault, _))
        ));
    }

    #[test]
    fn division_edge_cases() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, 5);
        s.set_xreg(Reg::A2, 0);
        let e = run(&s, &m, encode::div(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, u64::MAX)));
        let e = run(&s, &m, encode::rem(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 5)));
        s.set_xreg(Reg::A1, i64::MIN as u64);
        s.set_xreg(Reg::A2, (-1i64) as u64);
        let e = run(&s, &m, encode::div(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, i64::MIN as u64)));
        let e = run(&s, &m, encode::rem(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 0)));
    }

    #[test]
    fn mulh_wideness() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, u64::MAX);
        s.set_xreg(Reg::A2, u64::MAX);
        let e = run(&s, &m, encode::mulhu(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, u64::MAX - 1)));
        let e = run(&s, &m, encode::mulh(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 0))); // (-1) * (-1) = 1, high = 0
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let (mut s, mut m) = setup();
        let addr = Memory::RAM_BASE + 0x40;
        m.write(addr, 8, 99);
        s.set_xreg(Reg::A1, addr);
        s.set_xreg(Reg::A2, 123);

        let e = run(&s, &m, encode::lr_d(Reg::A0, Reg::A1));
        assert_eq!(e.xw, Some((Reg::A0, 99)));
        assert_eq!(e.set_reservation, Some(Some(addr)));
        s.set_reservation(Some(addr));

        let e = run(&s, &m, encode::sc_d(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 0)));
        assert_eq!(
            e.memw,
            Some(MemWrite {
                addr,
                len: 8,
                value: 123
            })
        );

        s.set_reservation(None);
        let e = run(&s, &m, encode::sc_d(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 1)));
        assert!(e.memw.is_none());
    }

    #[test]
    fn amoadd() {
        let (mut s, mut m) = setup();
        let addr = Memory::RAM_BASE + 0x80;
        m.write(addr, 4, 10);
        s.set_xreg(Reg::A1, addr);
        s.set_xreg(Reg::A2, 32);
        let e = run(&s, &m, encode::amoadd_w(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 10)));
        assert_eq!(e.memw.unwrap().value, 42);
    }

    #[test]
    fn csr_rw_returns_old() {
        let (mut s, m) = setup();
        s.set_csr(CsrIndex::Mscratch, 7);
        s.set_xreg(Reg::A1, 9);
        let e = run(&s, &m, encode::csrrw(Reg::A0, 0x340, Reg::A1));
        assert_eq!(e.xw, Some((Reg::A0, 7)));
        assert_eq!(e.csrw[0], Some((CsrIndex::Mscratch, 9)));
    }

    #[test]
    fn csrrs_with_x0_does_not_write() {
        let (mut s, m) = setup();
        s.set_csr(CsrIndex::Mscratch, 7);
        let e = run(&s, &m, encode::csrrs(Reg::A0, 0x340, Reg::ZERO));
        assert_eq!(e.xw, Some((Reg::A0, 7)));
        assert_eq!(e.csrw[0], None);
    }

    #[test]
    fn unknown_csr_is_illegal() {
        let (s, m) = setup();
        let e = run(&s, &m, encode::csrrw(Reg::A0, 0x7c0, Reg::A1));
        assert!(matches!(
            e.trap,
            Some(Trap::Exception(Exception::IllegalInstr, _))
        ));
    }

    #[test]
    fn ecall_traps() {
        let (s, m) = setup();
        let e = run(&s, &m, encode::ecall());
        assert_eq!(e.trap, Some(Trap::Exception(Exception::EcallM, 0)));
    }

    #[test]
    fn mret_restores() {
        use difftest_isa::csr::mstatus;
        let (mut s, m) = setup();
        s.set_csr(CsrIndex::Mepc, 0x8000_1234);
        s.set_csr(CsrIndex::Mstatus, mstatus::MPIE);
        let e = run(&s, &m, encode::mret());
        assert_eq!(e.next_pc, 0x8000_1234);
        let (c, v) = e.csrw[0].unwrap();
        assert_eq!(c, CsrIndex::Mstatus);
        assert!(v & mstatus::MIE != 0);
        assert!(v & mstatus::MPIE != 0);
    }

    #[test]
    fn fp_ops() {
        let (mut s, m) = setup();
        s.set_freg(FReg::new(1), 2.5f64.to_bits());
        s.set_freg(FReg::new(2), 0.5f64.to_bits());
        let e = run(
            &s,
            &m,
            encode::fadd_d(FReg::new(0), FReg::new(1), FReg::new(2)),
        );
        assert_eq!(e.fw, Some((FReg::new(0), 3.0f64.to_bits())));
        let e = run(
            &s,
            &m,
            encode::fdiv_d(FReg::new(0), FReg::new(1), FReg::new(2)),
        );
        assert_eq!(e.fw, Some((FReg::new(0), 5.0f64.to_bits())));
    }

    #[test]
    fn word_ops_sign_extend() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, 0x7fff_ffff);
        s.set_xreg(Reg::A2, 1);
        let e = run(&s, &m, encode::addw(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 0xffff_ffff_8000_0000)));
    }
}
