//! Pure RV64 instruction semantics with threaded dispatch.
//!
//! Each operation has a dedicated executor function with the uniform
//! [`ExecFn`] signature; [`exec_fn`] resolves the executor for an opcode
//! *once* (at decode or block-build time), and [`execute`] is the
//! convenience wrapper that resolves and calls in one go. The block cache
//! stores the resolved pointer next to the decoded instruction, so the hot
//! path dispatches straight through the micro-op array with no per-insn
//! `match`.
//!
//! An executor evaluates one instruction against an immutable view of the
//! architectural state and memory, and returns an [`Effect`] describing every
//! state mutation the instruction performs. The caller (the reference model,
//! or the DUT's commit stage) applies the effect — possibly through a
//! compensation journal, possibly with injected faults.
//!
//! Keeping semantics pure gives three things the project relies on:
//! deterministic replay, journaled application for checkpoint/revert, and a
//! single place where the DUT and REF semantics are defined (the DUT's
//! *microarchitecture* and its injected bugs provide the divergence that
//! co-simulation detects).

use difftest_isa::csr::CsrIndex;
use difftest_isa::trap::{Exception, Trap};
use difftest_isa::{FReg, Insn, Op, Reg};
use serde::{Deserialize, Serialize};

use crate::{ArchState, Memory};

/// A memory write performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemWrite {
    /// Byte address of the write.
    pub addr: u64,
    /// Width in bytes (1, 2, 4 or 8).
    pub len: u8,
    /// The value written (low `len` bytes significant).
    pub value: u64,
}

/// A memory read performed by an instruction (informational; the loaded
/// value appears in the register-write field of the effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRead {
    /// Byte address of the read.
    pub addr: u64,
    /// Width in bytes (1, 2, 4 or 8).
    pub len: u8,
}

/// Every architectural mutation one instruction performs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Effect {
    /// The PC of the next instruction.
    pub next_pc: u64,
    /// Integer register write, if any.
    pub xw: Option<(Reg, u64)>,
    /// Floating-point register write, if any.
    pub fw: Option<(FReg, u64)>,
    /// Up to two CSR writes (CSR instructions write one; `mret` writes
    /// `mstatus` and consumes `mepc`).
    pub csrw: [Option<(CsrIndex, u64)>; 2],
    /// Memory write, if any.
    pub memw: Option<MemWrite>,
    /// Memory read, if any.
    pub memr: Option<MemRead>,
    /// `Some(new)` replaces the LR/SC reservation.
    pub set_reservation: Option<Option<u64>>,
    /// The memory access (if any) touched the MMIO hole. For loads the
    /// effect's register value is a placeholder; the DUT resolves it against
    /// its devices and the REF must be synchronized via `skip_next`.
    pub mmio: bool,
    /// Exception raised; when set, no other field applies.
    pub trap: Option<Trap>,
    /// A conditional branch evaluated taken.
    pub branch_taken: bool,
}

impl Effect {
    fn fall_through(pc: u64) -> Effect {
        Effect {
            next_pc: pc.wrapping_add(4),
            ..Effect::default()
        }
    }

    fn trap(t: Trap) -> Effect {
        Effect {
            trap: Some(t),
            ..Effect::default()
        }
    }
}

/// A pre-resolved executor for one opcode.
///
/// All executors share this signature so the block cache can store the
/// pointer next to the decoded [`Insn`] and dispatch without a `match`.
pub type ExecFn = fn(&ArchState, &Memory, &Insn) -> Effect;

#[inline]
fn sext(value: u64, len: u8) -> u64 {
    let bits = len as u32 * 8;
    if bits == 64 {
        value
    } else {
        let shift = 64 - bits;
        (((value << shift) as i64) >> shift) as u64
    }
}

fn csr_read(state: &ArchState, addr: u16) -> Result<(CsrIndex, u64), Trap> {
    match CsrIndex::from_address(addr) {
        Some(c) => Ok((c, state.csr(c))),
        None => Err(Trap::Exception(Exception::IllegalInstr, 0)),
    }
}

// Executor bodies -----------------------------------------------------------
//
// The macros below keep each family's boilerplate (operand reads, x0
// suppression, the MMIO/fault ladder) in exactly one place; the per-op
// expression is the only thing that varies, mirroring the arms of the old
// monolithic `match`.

/// Register-writing ops with no memory access or control transfer. The
/// header names the operand bindings (`state`, `insn`, `pc`, `rs1`, `rs2`,
/// `imm`) at the call site so the per-op expressions can see them through
/// macro hygiene.
macro_rules! alu {
    (($state:ident, $insn:ident, $pc:ident, $rs1:ident, $rs2:ident, $imm:ident)
     $($name:ident => $v:expr;)*) => {$(
        #[allow(unused_variables)]
        fn $name($state: &ArchState, _mem: &Memory, $insn: &Insn) -> Effect {
            let $pc = $state.pc();
            let $rs1 = $state.xreg($insn.rs1);
            let $rs2 = $state.xreg($insn.rs2);
            let $imm = $insn.imm;
            let mut eff = Effect::fall_through($pc);
            let v: u64 = $v;
            // Writes to x0 are architectural no-ops and never reported as
            // register-write effects (the monitor would otherwise emit
            // commits whose destination value the REF cannot mirror).
            if !$insn.rd.is_zero() {
                eff.xw = Some(($insn.rd, v));
            }
            eff
        }
    )*};
}

alu! {
    (state, insn, pc, rs1, rs2, imm)
    x_lui => imm as u64;
    x_auipc => pc.wrapping_add(imm as u64);
    x_addi => rs1.wrapping_add(imm as u64);
    x_slti => ((rs1 as i64) < imm) as u64;
    x_sltiu => (rs1 < imm as u64) as u64;
    x_xori => rs1 ^ imm as u64;
    x_ori => rs1 | imm as u64;
    x_andi => rs1 & imm as u64;
    x_slli => rs1 << (imm as u32 & 63);
    x_srli => rs1 >> (imm as u32 & 63);
    x_srai => ((rs1 as i64) >> (imm as u32 & 63)) as u64;
    x_addiw => sext(rs1.wrapping_add(imm as u64) & 0xffff_ffff, 4);
    x_slliw => sext(((rs1 as u32) << (imm as u32 & 31)) as u64, 4);
    x_srliw => sext(((rs1 as u32) >> (imm as u32 & 31)) as u64, 4);
    x_sraiw => sext((((rs1 as i32) >> (imm as u32 & 31)) as u32) as u64, 4);
    x_add => rs1.wrapping_add(rs2);
    x_sub => rs1.wrapping_sub(rs2);
    x_sll => rs1 << (rs2 & 63);
    x_slt => ((rs1 as i64) < (rs2 as i64)) as u64;
    x_sltu => (rs1 < rs2) as u64;
    x_xor => rs1 ^ rs2;
    x_srl => rs1 >> (rs2 & 63);
    x_sra => ((rs1 as i64) >> (rs2 & 63)) as u64;
    x_or => rs1 | rs2;
    x_and => rs1 & rs2;
    x_addw => sext(rs1.wrapping_add(rs2) & 0xffff_ffff, 4);
    x_subw => sext(rs1.wrapping_sub(rs2) & 0xffff_ffff, 4);
    x_sllw => sext(((rs1 as u32) << (rs2 & 31)) as u64, 4);
    x_srlw => sext(((rs1 as u32) >> (rs2 & 31)) as u64, 4);
    x_sraw => sext((((rs1 as i32) >> (rs2 & 31)) as u32) as u64, 4);
    x_mul => rs1.wrapping_mul(rs2);
    x_mulh => (((rs1 as i64 as i128) * (rs2 as i64 as i128)) >> 64) as u64;
    x_mulhsu => (((rs1 as i64 as i128) * (rs2 as u128 as i128)) >> 64) as u64;
    x_mulhu => (((rs1 as u128) * (rs2 as u128)) >> 64) as u64;
    x_div => {
        let (a, b) = (rs1 as i64, rs2 as i64);
        if b == 0 {
            u64::MAX
        } else if a == i64::MIN && b == -1 {
            a as u64
        } else {
            (a / b) as u64
        }
    };
    x_divu => rs1.checked_div(rs2).unwrap_or(u64::MAX);
    x_rem => {
        let (a, b) = (rs1 as i64, rs2 as i64);
        if b == 0 {
            a as u64
        } else if a == i64::MIN && b == -1 {
            0
        } else {
            (a % b) as u64
        }
    };
    x_remu => if rs2 == 0 { rs1 } else { rs1 % rs2 };
    x_mulw => sext((rs1 as u32).wrapping_mul(rs2 as u32) as u64, 4);
    x_divw => {
        let (a, b) = (rs1 as i32, rs2 as i32);
        sext(
            if b == 0 {
                u32::MAX as u64
            } else if a == i32::MIN && b == -1 {
                a as u32 as u64
            } else {
                (a / b) as u32 as u64
            },
            4,
        )
    };
    x_divuw => {
        let (a, b) = (rs1 as u32, rs2 as u32);
        sext(a.checked_div(b).unwrap_or(u32::MAX) as u64, 4)
    };
    x_remw => {
        let (a, b) = (rs1 as i32, rs2 as i32);
        sext(
            if b == 0 {
                a as u32 as u64
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                (a % b) as u32 as u64
            },
            4,
        )
    };
    x_remuw => {
        let (a, b) = (rs1 as u32, rs2 as u32);
        sext(if b == 0 { a as u64 } else { (a % b) as u64 }, 4)
    };
    x_andn => rs1 & !rs2;
    x_orn => rs1 | !rs2;
    x_xnor => !(rs1 ^ rs2);
    x_min => (rs1 as i64).min(rs2 as i64) as u64;
    x_minu => rs1.min(rs2);
    x_max => (rs1 as i64).max(rs2 as i64) as u64;
    x_maxu => rs1.max(rs2);
    x_rol => rs1.rotate_left((rs2 & 63) as u32);
    x_ror => rs1.rotate_right((rs2 & 63) as u32);
    x_rori => rs1.rotate_right(imm as u32 & 63);
    x_clz => rs1.leading_zeros() as u64;
    x_ctz => rs1.trailing_zeros() as u64;
    x_cpop => rs1.count_ones() as u64;
    x_sext_b => rs1 as u8 as i8 as i64 as u64;
    x_sext_h => rs1 as u16 as i16 as i64 as u64;
    x_zext_h => rs1 as u16 as u64;
    x_rev8 => rs1.swap_bytes();
    x_orc_b => {
        let mut v = 0u64;
        for byte in 0..8 {
            if (rs1 >> (8 * byte)) & 0xff != 0 {
                v |= 0xffu64 << (8 * byte);
            }
        }
        v
    };
    x_fmv_x_d => state.freg(insn.frs1());
}

/// Conditional branches: the expression evaluates "taken" over the
/// call-site-named `rs1`/`rs2` bindings.
macro_rules! branch {
    (($rs1:ident, $rs2:ident) $($name:ident => $taken:expr;)*) => {$(
        fn $name(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
            let pc = state.pc();
            let $rs1 = state.xreg(insn.rs1);
            let $rs2 = state.xreg(insn.rs2);
            let mut eff = Effect::fall_through(pc);
            let taken: bool = $taken;
            if taken {
                eff.next_pc = pc.wrapping_add(insn.imm as u64);
                eff.branch_taken = true;
            }
            eff
        }
    )*};
}

branch! {
    (rs1, rs2)
    x_beq => rs1 == rs2;
    x_bne => rs1 != rs2;
    x_blt => (rs1 as i64) < (rs2 as i64);
    x_bge => (rs1 as i64) >= (rs2 as i64);
    x_bltu => rs1 < rs2;
    x_bgeu => rs1 >= rs2;
}

/// Integer loads: the MMIO placeholder, the RAM bounds fault and the
/// sign-extension rule are shared; only width and signedness vary.
macro_rules! load {
    ($($name:ident => ($len:expr, $signed:expr);)*) => {$(
        fn $name(state: &ArchState, mem: &Memory, insn: &Insn) -> Effect {
            let pc = state.pc();
            let addr = state.xreg(insn.rs1).wrapping_add(insn.imm as u64);
            let len: u8 = $len;
            let mut eff = Effect::fall_through(pc);
            if Memory::is_mmio(addr) {
                eff.mmio = true;
                eff.memr = Some(MemRead { addr, len });
                // Placeholder: resolved by the device / skip sync.
                if !insn.rd.is_zero() {
                    eff.xw = Some((insn.rd, 0));
                }
            } else if !Memory::in_ram(addr, len as u64) {
                return Effect::trap(Trap::Exception(Exception::LoadAccessFault, addr));
            } else {
                let raw = mem.read(addr, len as usize);
                eff.memr = Some(MemRead { addr, len });
                let v = if $signed { sext(raw, len) } else { raw };
                if !insn.rd.is_zero() {
                    eff.xw = Some((insn.rd, v));
                }
            }
            eff
        }
    )*};
}

load! {
    x_lb => (1, true);
    x_lh => (2, true);
    x_lw => (4, true);
    x_ld => (8, true);
    x_lbu => (1, false);
    x_lhu => (2, false);
    x_lwu => (4, false);
}

fn store_common(state: &ArchState, insn: &Insn, len: u8, value: u64) -> Effect {
    let pc = state.pc();
    let addr = state.xreg(insn.rs1).wrapping_add(insn.imm as u64);
    let mut eff = Effect::fall_through(pc);
    if Memory::is_mmio(addr) {
        eff.mmio = true;
        eff.memw = Some(MemWrite { addr, len, value });
    } else if !Memory::in_ram(addr, len as u64) {
        return Effect::trap(Trap::Exception(Exception::StoreAccessFault, addr));
    } else {
        eff.memw = Some(MemWrite { addr, len, value });
    }
    eff
}

macro_rules! store {
    ($($name:ident => $len:expr;)*) => {$(
        fn $name(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
            store_common(state, insn, $len, state.xreg(insn.rs2))
        }
    )*};
}

store! {
    x_sb => 1;
    x_sh => 2;
    x_sw => 4;
    x_sd => 8;
}

fn x_fsd(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
    store_common(state, insn, 8, state.freg(insn.frs2()))
}

fn x_fld(state: &ArchState, mem: &Memory, insn: &Insn) -> Effect {
    let pc = state.pc();
    let addr = state.xreg(insn.rs1).wrapping_add(insn.imm as u64);
    let mut eff = Effect::fall_through(pc);
    if Memory::is_mmio(addr) {
        eff.mmio = true;
        eff.memr = Some(MemRead { addr, len: 8 });
        eff.fw = Some((insn.frd(), 0));
    } else if !Memory::in_ram(addr, 8) {
        return Effect::trap(Trap::Exception(Exception::LoadAccessFault, addr));
    } else {
        eff.memr = Some(MemRead { addr, len: 8 });
        eff.fw = Some((insn.frd(), mem.read(addr, 8)));
    }
    eff
}

fn lr_common(state: &ArchState, mem: &Memory, insn: &Insn, len: u8) -> Effect {
    let addr = state.xreg(insn.rs1);
    if !Memory::in_ram(addr, len as u64) {
        return Effect::trap(Trap::Exception(Exception::LoadAccessFault, addr));
    }
    let mut eff = Effect::fall_through(state.pc());
    let raw = mem.read(addr, len as usize);
    eff.memr = Some(MemRead { addr, len });
    if !insn.rd.is_zero() {
        eff.xw = Some((insn.rd, sext(raw, len)));
    }
    eff.set_reservation = Some(Some(addr));
    eff
}

fn x_lr_w(state: &ArchState, mem: &Memory, insn: &Insn) -> Effect {
    lr_common(state, mem, insn, 4)
}

fn x_lr_d(state: &ArchState, mem: &Memory, insn: &Insn) -> Effect {
    lr_common(state, mem, insn, 8)
}

fn sc_common(state: &ArchState, insn: &Insn, len: u8) -> Effect {
    let addr = state.xreg(insn.rs1);
    if !Memory::in_ram(addr, len as u64) {
        return Effect::trap(Trap::Exception(Exception::StoreAccessFault, addr));
    }
    let mut eff = Effect::fall_through(state.pc());
    let success = state.reservation() == Some(addr);
    if success {
        eff.memw = Some(MemWrite {
            addr,
            len,
            value: state.xreg(insn.rs2),
        });
    }
    if !insn.rd.is_zero() {
        eff.xw = Some((insn.rd, u64::from(!success)));
    }
    eff.set_reservation = Some(None);
    eff
}

fn x_sc_w(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
    sc_common(state, insn, 4)
}

fn x_sc_d(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
    sc_common(state, insn, 8)
}

/// Read-modify-write atomics. The closure computes the new memory value from
/// the sign-extended views `a`/`b` (W-form: 32-bit views) plus the raw
/// sign-extended old value and rs2, exactly as the old `match` arm did.
macro_rules! amo {
    ($($name:ident => ($len:expr, $new:expr);)*) => {$(
        #[allow(clippy::redundant_closure_call)]
        fn $name(state: &ArchState, mem: &Memory, insn: &Insn) -> Effect {
            let addr = state.xreg(insn.rs1);
            let rs2 = state.xreg(insn.rs2);
            let len: u8 = $len;
            if !Memory::in_ram(addr, len as u64) {
                return Effect::trap(Trap::Exception(Exception::StoreAccessFault, addr));
            }
            let old = sext(mem.read(addr, len as usize), len);
            // W-form AMOs operate on the sign-extended 32-bit views.
            let (a, b) = if len == 4 {
                (old as i32 as i64, rs2 as i32 as i64)
            } else {
                (old as i64, rs2 as i64)
            };
            let mut eff = Effect::fall_through(state.pc());
            let new: u64 = ($new)(a, b, old, rs2);
            eff.memr = Some(MemRead { addr, len });
            eff.memw = Some(MemWrite { addr, len, value: new });
            if !insn.rd.is_zero() {
                eff.xw = Some((insn.rd, old));
            }
            eff
        }
    )*};
}

amo! {
    x_amoswap_w => (4, |_a: i64, _b: i64, _old: u64, rs2: u64| rs2);
    x_amoadd_w => (4, |a: i64, b: i64, _old: u64, _rs2: u64| a.wrapping_add(b) as u64);
    x_amoxor_w => (4, |a: i64, b: i64, _old: u64, _rs2: u64| (a ^ b) as u64);
    x_amoand_w => (4, |a: i64, b: i64, _old: u64, _rs2: u64| (a & b) as u64);
    x_amoor_w => (4, |a: i64, b: i64, _old: u64, _rs2: u64| (a | b) as u64);
    x_amomin_w => (4, |a: i64, b: i64, _old: u64, _rs2: u64| a.min(b) as u64);
    x_amomax_w => (4, |a: i64, b: i64, _old: u64, _rs2: u64| a.max(b) as u64);
    x_amominu_w => (4, |_a: i64, _b: i64, old: u64, rs2: u64| (old as u32).min(rs2 as u32) as u64);
    x_amomaxu_w => (4, |_a: i64, _b: i64, old: u64, rs2: u64| (old as u32).max(rs2 as u32) as u64);
    x_amoswap_d => (8, |_a: i64, _b: i64, _old: u64, rs2: u64| rs2);
    x_amoadd_d => (8, |a: i64, b: i64, _old: u64, _rs2: u64| a.wrapping_add(b) as u64);
    x_amoxor_d => (8, |a: i64, b: i64, _old: u64, _rs2: u64| (a ^ b) as u64);
    x_amoand_d => (8, |a: i64, b: i64, _old: u64, _rs2: u64| (a & b) as u64);
    x_amoor_d => (8, |a: i64, b: i64, _old: u64, _rs2: u64| (a | b) as u64);
    x_amomin_d => (8, |a: i64, b: i64, _old: u64, _rs2: u64| a.min(b) as u64);
    x_amomax_d => (8, |a: i64, b: i64, _old: u64, _rs2: u64| a.max(b) as u64);
    x_amominu_d => (8, |_a: i64, _b: i64, old: u64, rs2: u64| old.min(rs2));
    x_amomaxu_d => (8, |_a: i64, _b: i64, old: u64, rs2: u64| old.max(rs2));
}

/// Zicsr ops. The closure maps `(old, operand)` to the optional write; the
/// "no write when the mask operand is x0/zero-imm" rule collapses to
/// `operand == 0` because x0 always reads zero.
macro_rules! csr_op {
    ($($name:ident => ($immform:expr, $write:expr);)*) => {$(
        #[allow(clippy::redundant_closure_call)]
        fn $name(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
            let (c, old) = match csr_read(state, insn.csr) {
                Ok(v) => v,
                Err(t) => return Effect::trap(t),
            };
            let operand: u64 = if $immform {
                insn.zimm()
            } else {
                state.xreg(insn.rs1)
            };
            let mut eff = Effect::fall_through(state.pc());
            let write: Option<u64> = ($write)(old, operand);
            if let Some(v) = write {
                eff.csrw[0] = Some((c, v));
            }
            if !insn.rd.is_zero() {
                eff.xw = Some((insn.rd, old));
            }
            eff
        }
    )*};
}

csr_op! {
    x_csrrw => (false, |_old: u64, operand: u64| Some(operand));
    x_csrrs => (false, |old: u64, operand: u64| {
        if operand == 0 { None } else { Some(old | operand) }
    });
    x_csrrc => (false, |old: u64, operand: u64| {
        if operand == 0 { None } else { Some(old & !operand) }
    });
    x_csrrwi => (true, |_old: u64, operand: u64| Some(operand));
    x_csrrsi => (true, |old: u64, operand: u64| {
        if operand == 0 { None } else { Some(old | operand) }
    });
    x_csrrci => (true, |old: u64, operand: u64| {
        if operand == 0 { None } else { Some(old & !operand) }
    });
}

fn x_jal(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
    let pc = state.pc();
    let mut eff = Effect::fall_through(pc);
    if !insn.rd.is_zero() {
        eff.xw = Some((insn.rd, pc.wrapping_add(4)));
    }
    eff.next_pc = pc.wrapping_add(insn.imm as u64);
    eff
}

fn x_jalr(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
    let pc = state.pc();
    let mut eff = Effect::fall_through(pc);
    if !insn.rd.is_zero() {
        eff.xw = Some((insn.rd, pc.wrapping_add(4)));
    }
    eff.next_pc = state.xreg(insn.rs1).wrapping_add(insn.imm as u64) & !1;
    eff
}

/// `fence` and `wfi`: architecturally a fall-through no-op here (the model
/// layer owns the cache-flush side of `fence`).
fn x_nop_sys(state: &ArchState, _mem: &Memory, _insn: &Insn) -> Effect {
    Effect::fall_through(state.pc())
}

fn x_ecall(_state: &ArchState, _mem: &Memory, _insn: &Insn) -> Effect {
    Effect::trap(Trap::Exception(Exception::EcallM, 0))
}

fn x_ebreak(state: &ArchState, _mem: &Memory, _insn: &Insn) -> Effect {
    Effect::trap(Trap::Exception(Exception::Breakpoint, state.pc()))
}

fn x_mret(state: &ArchState, _mem: &Memory, _insn: &Insn) -> Effect {
    use difftest_isa::csr::mstatus;
    let mut eff = Effect::fall_through(state.pc());
    let status = state.csr(CsrIndex::Mstatus);
    let mpie = (status & mstatus::MPIE) != 0;
    let mut new_status = status;
    if mpie {
        new_status |= mstatus::MIE;
    } else {
        new_status &= !mstatus::MIE;
    }
    new_status |= mstatus::MPIE;
    eff.csrw[0] = Some((CsrIndex::Mstatus, new_status));
    eff.next_pc = state.csr(CsrIndex::Mepc);
    eff
}

fn x_fmv_d_x(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
    let mut eff = Effect::fall_through(state.pc());
    eff.fw = Some((insn.frd(), state.xreg(insn.rs1)));
    eff
}

macro_rules! fp_arith {
    ($($name:ident => $f:expr;)*) => {$(
        #[allow(clippy::redundant_closure_call)]
        fn $name(state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
            let a = f64::from_bits(state.freg(insn.frs1()));
            let b = f64::from_bits(state.freg(insn.frs2()));
            let mut eff = Effect::fall_through(state.pc());
            let r: f64 = ($f)(a, b);
            eff.fw = Some((insn.frd(), r.to_bits()));
            eff
        }
    )*};
}

fp_arith! {
    x_fadd_d => |a: f64, b: f64| a + b;
    x_fsub_d => |a: f64, b: f64| a - b;
    x_fmul_d => |a: f64, b: f64| a * b;
    x_fdiv_d => |a: f64, b: f64| a / b;
}

fn x_illegal(_state: &ArchState, _mem: &Memory, insn: &Insn) -> Effect {
    Effect::trap(Trap::Exception(Exception::IllegalInstr, insn.raw as u64))
}

/// Resolves the executor for `op`.
///
/// This is the *only* opcode `match` on the execution path; decode-time
/// callers (the block builder, the per-insn cache) resolve once and reuse
/// the returned pointer for every subsequent dispatch.
pub fn exec_fn(op: Op) -> ExecFn {
    use Op::*;
    match op {
        Lui => x_lui,
        Auipc => x_auipc,
        Jal => x_jal,
        Jalr => x_jalr,
        Beq => x_beq,
        Bne => x_bne,
        Blt => x_blt,
        Bge => x_bge,
        Bltu => x_bltu,
        Bgeu => x_bgeu,
        Lb => x_lb,
        Lh => x_lh,
        Lw => x_lw,
        Ld => x_ld,
        Lbu => x_lbu,
        Lhu => x_lhu,
        Lwu => x_lwu,
        Sb => x_sb,
        Sh => x_sh,
        Sw => x_sw,
        Sd => x_sd,
        Addi => x_addi,
        Slti => x_slti,
        Sltiu => x_sltiu,
        Xori => x_xori,
        Ori => x_ori,
        Andi => x_andi,
        Slli => x_slli,
        Srli => x_srli,
        Srai => x_srai,
        Addiw => x_addiw,
        Slliw => x_slliw,
        Srliw => x_srliw,
        Sraiw => x_sraiw,
        Add => x_add,
        Sub => x_sub,
        Sll => x_sll,
        Slt => x_slt,
        Sltu => x_sltu,
        Xor => x_xor,
        Srl => x_srl,
        Sra => x_sra,
        Or => x_or,
        And => x_and,
        Addw => x_addw,
        Subw => x_subw,
        Sllw => x_sllw,
        Srlw => x_srlw,
        Sraw => x_sraw,
        Mul => x_mul,
        Mulh => x_mulh,
        Mulhsu => x_mulhsu,
        Mulhu => x_mulhu,
        Div => x_div,
        Divu => x_divu,
        Rem => x_rem,
        Remu => x_remu,
        Mulw => x_mulw,
        Divw => x_divw,
        Divuw => x_divuw,
        Remw => x_remw,
        Remuw => x_remuw,
        LrW => x_lr_w,
        ScW => x_sc_w,
        LrD => x_lr_d,
        ScD => x_sc_d,
        AmoSwapW => x_amoswap_w,
        AmoAddW => x_amoadd_w,
        AmoXorW => x_amoxor_w,
        AmoAndW => x_amoand_w,
        AmoOrW => x_amoor_w,
        AmoMinW => x_amomin_w,
        AmoMaxW => x_amomax_w,
        AmoMinuW => x_amominu_w,
        AmoMaxuW => x_amomaxu_w,
        AmoSwapD => x_amoswap_d,
        AmoAddD => x_amoadd_d,
        AmoXorD => x_amoxor_d,
        AmoAndD => x_amoand_d,
        AmoOrD => x_amoor_d,
        AmoMinD => x_amomin_d,
        AmoMaxD => x_amomax_d,
        AmoMinuD => x_amominu_d,
        AmoMaxuD => x_amomaxu_d,
        Andn => x_andn,
        Orn => x_orn,
        Xnor => x_xnor,
        Min => x_min,
        Minu => x_minu,
        Max => x_max,
        Maxu => x_maxu,
        Rol => x_rol,
        Ror => x_ror,
        Rori => x_rori,
        Clz => x_clz,
        Ctz => x_ctz,
        Cpop => x_cpop,
        SextB => x_sext_b,
        SextH => x_sext_h,
        ZextH => x_zext_h,
        Rev8 => x_rev8,
        OrcB => x_orc_b,
        Fence => x_nop_sys,
        Ecall => x_ecall,
        Ebreak => x_ebreak,
        Mret => x_mret,
        Wfi => x_nop_sys,
        Csrrw => x_csrrw,
        Csrrs => x_csrrs,
        Csrrc => x_csrrc,
        Csrrwi => x_csrrwi,
        Csrrsi => x_csrrsi,
        Csrrci => x_csrrci,
        Fld => x_fld,
        Fsd => x_fsd,
        FmvDX => x_fmv_d_x,
        FmvXD => x_fmv_x_d,
        FaddD => x_fadd_d,
        FsubD => x_fsub_d,
        FmulD => x_fmul_d,
        FdivD => x_fdiv_d,
        Illegal => x_illegal,
    }
}

/// Evaluates `insn` at `state.pc()` against `state` and `mem`.
///
/// The returned [`Effect`] is not applied; callers decide how (journaled,
/// fault-injected, ...). MMIO loads return a zero placeholder value with
/// [`Effect::mmio`] set — resolving the device value is the caller's job.
pub fn execute(state: &ArchState, mem: &Memory, insn: &Insn) -> Effect {
    exec_fn(insn.op)(state, mem, insn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_isa::{decode, encode};

    fn setup() -> (ArchState, Memory) {
        (ArchState::new(Memory::RAM_BASE), Memory::new())
    }

    fn run(state: &ArchState, mem: &Memory, word: u32) -> Effect {
        execute(state, mem, &decode(word))
    }

    #[test]
    fn addi_and_fall_through() {
        let (s, m) = setup();
        let e = run(&s, &m, encode::addi(Reg::A0, Reg::ZERO, -7));
        assert_eq!(e.xw, Some((Reg::A0, (-7i64) as u64)));
        assert_eq!(e.next_pc, Memory::RAM_BASE + 4);
        assert!(e.trap.is_none());
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A0, 1);
        let e = run(&s, &m, encode::beq(Reg::A0, Reg::ZERO, 16));
        assert!(!e.branch_taken);
        assert_eq!(e.next_pc, Memory::RAM_BASE + 4);
        let e = run(&s, &m, encode::bne(Reg::A0, Reg::ZERO, 16));
        assert!(e.branch_taken);
        assert_eq!(e.next_pc, Memory::RAM_BASE + 16);
    }

    #[test]
    fn load_sign_extension() {
        let (mut s, mut m) = setup();
        m.write(Memory::RAM_BASE + 0x100, 1, 0x80);
        s.set_xreg(Reg::A1, Memory::RAM_BASE + 0x100);
        let e = run(&s, &m, encode::lb(Reg::A0, Reg::A1, 0));
        assert_eq!(e.xw, Some((Reg::A0, 0xffff_ffff_ffff_ff80)));
        let e = run(&s, &m, encode::lbu(Reg::A0, Reg::A1, 0));
        assert_eq!(e.xw, Some((Reg::A0, 0x80)));
    }

    #[test]
    fn mmio_load_is_flagged() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, 0x1000_0000);
        let e = run(&s, &m, encode::lw(Reg::A0, Reg::A1, 0));
        assert!(e.mmio);
        assert_eq!(e.xw, Some((Reg::A0, 0)));
        assert!(e.trap.is_none());
    }

    #[test]
    fn out_of_range_faults() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, Memory::RAM_BASE + Memory::RAM_SIZE);
        let e = run(&s, &m, encode::lw(Reg::A0, Reg::A1, 0));
        assert!(matches!(
            e.trap,
            Some(Trap::Exception(Exception::LoadAccessFault, _))
        ));
        let e = run(&s, &m, encode::sw(Reg::A0, Reg::A1, 0));
        assert!(matches!(
            e.trap,
            Some(Trap::Exception(Exception::StoreAccessFault, _))
        ));
    }

    #[test]
    fn division_edge_cases() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, 5);
        s.set_xreg(Reg::A2, 0);
        let e = run(&s, &m, encode::div(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, u64::MAX)));
        let e = run(&s, &m, encode::rem(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 5)));
        s.set_xreg(Reg::A1, i64::MIN as u64);
        s.set_xreg(Reg::A2, (-1i64) as u64);
        let e = run(&s, &m, encode::div(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, i64::MIN as u64)));
        let e = run(&s, &m, encode::rem(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 0)));
    }

    #[test]
    fn mulh_wideness() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, u64::MAX);
        s.set_xreg(Reg::A2, u64::MAX);
        let e = run(&s, &m, encode::mulhu(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, u64::MAX - 1)));
        let e = run(&s, &m, encode::mulh(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 0))); // (-1) * (-1) = 1, high = 0
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let (mut s, mut m) = setup();
        let addr = Memory::RAM_BASE + 0x40;
        m.write(addr, 8, 99);
        s.set_xreg(Reg::A1, addr);
        s.set_xreg(Reg::A2, 123);

        let e = run(&s, &m, encode::lr_d(Reg::A0, Reg::A1));
        assert_eq!(e.xw, Some((Reg::A0, 99)));
        assert_eq!(e.set_reservation, Some(Some(addr)));
        s.set_reservation(Some(addr));

        let e = run(&s, &m, encode::sc_d(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 0)));
        assert_eq!(
            e.memw,
            Some(MemWrite {
                addr,
                len: 8,
                value: 123
            })
        );

        s.set_reservation(None);
        let e = run(&s, &m, encode::sc_d(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 1)));
        assert!(e.memw.is_none());
    }

    #[test]
    fn amoadd() {
        let (mut s, mut m) = setup();
        let addr = Memory::RAM_BASE + 0x80;
        m.write(addr, 4, 10);
        s.set_xreg(Reg::A1, addr);
        s.set_xreg(Reg::A2, 32);
        let e = run(&s, &m, encode::amoadd_w(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 10)));
        assert_eq!(e.memw.unwrap().value, 42);
    }

    #[test]
    fn csr_rw_returns_old() {
        let (mut s, m) = setup();
        s.set_csr(CsrIndex::Mscratch, 7);
        s.set_xreg(Reg::A1, 9);
        let e = run(&s, &m, encode::csrrw(Reg::A0, 0x340, Reg::A1));
        assert_eq!(e.xw, Some((Reg::A0, 7)));
        assert_eq!(e.csrw[0], Some((CsrIndex::Mscratch, 9)));
    }

    #[test]
    fn csrrs_with_x0_does_not_write() {
        let (mut s, m) = setup();
        s.set_csr(CsrIndex::Mscratch, 7);
        let e = run(&s, &m, encode::csrrs(Reg::A0, 0x340, Reg::ZERO));
        assert_eq!(e.xw, Some((Reg::A0, 7)));
        assert_eq!(e.csrw[0], None);
    }

    #[test]
    fn unknown_csr_is_illegal() {
        let (s, m) = setup();
        let e = run(&s, &m, encode::csrrw(Reg::A0, 0x7c0, Reg::A1));
        assert!(matches!(
            e.trap,
            Some(Trap::Exception(Exception::IllegalInstr, _))
        ));
    }

    #[test]
    fn ecall_traps() {
        let (s, m) = setup();
        let e = run(&s, &m, encode::ecall());
        assert_eq!(e.trap, Some(Trap::Exception(Exception::EcallM, 0)));
    }

    #[test]
    fn mret_restores() {
        use difftest_isa::csr::mstatus;
        let (mut s, m) = setup();
        s.set_csr(CsrIndex::Mepc, 0x8000_1234);
        s.set_csr(CsrIndex::Mstatus, mstatus::MPIE);
        let e = run(&s, &m, encode::mret());
        assert_eq!(e.next_pc, 0x8000_1234);
        let (c, v) = e.csrw[0].unwrap();
        assert_eq!(c, CsrIndex::Mstatus);
        assert!(v & mstatus::MIE != 0);
        assert!(v & mstatus::MPIE != 0);
    }

    #[test]
    fn fp_ops() {
        let (mut s, m) = setup();
        s.set_freg(FReg::new(1), 2.5f64.to_bits());
        s.set_freg(FReg::new(2), 0.5f64.to_bits());
        let e = run(
            &s,
            &m,
            encode::fadd_d(FReg::new(0), FReg::new(1), FReg::new(2)),
        );
        assert_eq!(e.fw, Some((FReg::new(0), 3.0f64.to_bits())));
        let e = run(
            &s,
            &m,
            encode::fdiv_d(FReg::new(0), FReg::new(1), FReg::new(2)),
        );
        assert_eq!(e.fw, Some((FReg::new(0), 5.0f64.to_bits())));
    }

    #[test]
    fn word_ops_sign_extend() {
        let (mut s, m) = setup();
        s.set_xreg(Reg::A1, 0x7fff_ffff);
        s.set_xreg(Reg::A2, 1);
        let e = run(&s, &m, encode::addw(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(e.xw, Some((Reg::A0, 0xffff_ffff_8000_0000)));
    }
}
