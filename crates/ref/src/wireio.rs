//! Shared little-endian wire helpers.
//!
//! The repo hand-rolls two byte codecs — the checkpoint image in
//! [`crate::checkpoint`] and the `DTH1`/`DTHR` socket protocol in
//! `difftest-core` — and both used to carry private copies of the same
//! `u8`/`u32`/`u64` plumbing. This module is the single shared copy:
//!
//! - [`put_u8`]/[`put_u16`]/[`put_u32`]/[`put_u64`] append to a `Vec`
//!   (in-memory blob builders like the checkpoint image),
//! - [`Reader`] walks a byte slice with typed underflow errors
//!   ([`ShortRead`]) instead of panics — callers map [`ShortRead`] onto
//!   their own error enums,
//! - [`w_u8`]/[`w_u32`]/[`w_u64`]/[`w_str`] and the matching
//!   [`r_u8`]/[`r_u32`]/[`r_u64`]/[`r_str`] speak [`std::io`] streams
//!   (the socket protocol's blocking paths).
//!
//! Everything is little-endian, mirroring the RISC-V guest the images
//! describe.

use std::io::{self, Read, Write};

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u16` little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A read ran past the end of the slice: the blob is truncated (or a
/// length field lied). Callers translate this into their own typed
/// error (`CheckpointError::Truncated`, `ProtoError::Truncated`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShortRead;

impl std::fmt::Display for ShortRead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("wire read past end of buffer")
    }
}

impl std::error::Error for ShortRead {}

/// A bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ShortRead> {
        let end = self.pos.checked_add(n).ok_or(ShortRead)?;
        if end > self.bytes.len() {
            return Err(ShortRead);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, ShortRead> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, ShortRead> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ShortRead> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ShortRead> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes still unread.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Writes a `u8` to an [`io::Write`] stream.
pub fn w_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Writes a little-endian `u32`.
pub fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a little-endian `u64`.
pub fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a `u32` length prefix followed by the UTF-8 bytes.
pub fn w_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    w_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

/// Reads a `u8` from an [`io::Read`] stream.
pub fn r_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Reads a little-endian `u32`.
pub fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads a little-endian `u64`.
pub fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a length-prefixed UTF-8 string, rejecting prefixes beyond
/// `max_len` (a desynchronized or hostile stream) *before* allocating.
pub fn r_str<R: Read>(r: &mut R, max_len: usize) -> io::Result<String> {
    let len = r_u32(r)? as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "wire string length out of bounds",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "wire string not utf-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_and_reader_round_trip() {
        let mut blob = Vec::new();
        put_u8(&mut blob, 0xab);
        put_u16(&mut blob, 0x1234);
        put_u32(&mut blob, 0xdead_beef);
        put_u64(&mut blob, 0x0123_4567_89ab_cdef);
        let mut r = Reader::new(&blob);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert!(r.is_empty());
        assert_eq!(r.u8(), Err(ShortRead));
    }

    #[test]
    fn io_helpers_round_trip() {
        let mut blob = Vec::new();
        w_u8(&mut blob, 7).unwrap();
        w_u32(&mut blob, 42).unwrap();
        w_u64(&mut blob, u64::MAX).unwrap();
        w_str(&mut blob, "difftest").unwrap();
        let mut r = blob.as_slice();
        assert_eq!(r_u8(&mut r).unwrap(), 7);
        assert_eq!(r_u32(&mut r).unwrap(), 42);
        assert_eq!(r_u64(&mut r).unwrap(), u64::MAX);
        assert_eq!(r_str(&mut r, 64).unwrap(), "difftest");
    }

    #[test]
    fn hostile_string_prefix_is_rejected_before_allocation() {
        let mut blob = Vec::new();
        w_u32(&mut blob, u32::MAX).unwrap();
        let err = r_str(&mut blob.as_slice(), 1 << 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn reader_take_is_bounds_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.take(2), Err(ShortRead));
        // A failed take consumes nothing.
        assert_eq!(r.take(1).unwrap(), &[3]);
    }
}
