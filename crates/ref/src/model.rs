//! The steppable reference model with NDE synchronization and revert.

use difftest_isa::csr::{mstatus, CsrIndex};
use difftest_isa::trap::{Interrupt, Trap};
use difftest_isa::{decode, FReg, Insn, Op, Reg};
use serde::{Deserialize, Serialize};

use crate::exec::{exec_fn, Effect, ExecFn};
use crate::icache::{BlockCache, BlockCacheStats, DecodeCache, DecodeCacheStats, MAX_BLOCK_LEN};
use crate::journal::{Journal, JournalEntry};
use crate::{ArchState, Memory};

/// What one call to [`RefModel::step`] did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StepOutcome {
    /// An instruction retired normally.
    Retired {
        /// PC of the retired instruction.
        pc: u64,
        /// The instruction.
        insn: Insn,
        /// Its applied effect.
        effect: Effect,
    },
    /// The instruction raised an exception; trap entry was performed and the
    /// instruction did **not** retire.
    Trapped {
        /// PC of the excepting instruction.
        pc: u64,
        /// The trap taken.
        trap: Trap,
    },
    /// A pending MMIO skip was applied: the instruction's destination was
    /// forced to the DUT-provided value and the PC advanced without
    /// executing (DiffTest's "skip" synchronization).
    Skipped {
        /// PC of the skipped instruction.
        pc: u64,
        /// The instruction that was skipped.
        insn: Insn,
    },
}

/// The golden reference model: architectural state + memory + journal.
///
/// # Non-deterministic event synchronization
///
/// - [`RefModel::skip_next`] arms an MMIO-load skip for the next step.
/// - [`RefModel::raise_interrupt`] performs trap entry for a DUT-observed
///   interrupt at the current instruction boundary.
///
/// # Checkpoint / revert
///
/// With the journal enabled ([`RefModel::set_journal_enabled`]) the model
/// records compensation entries for every mutation. [`RefModel::checkpoint`]
/// marks a position and [`RefModel::revert`] rolls state and memory back to
/// the most recent mark — the mechanism Replay uses to reprocess unfused
/// events after a mismatch.
/// # Execution tiers
///
/// Three tiers share one set of semantics ([`crate::exec`]):
///
/// 1. **Block mode** (default): the [`BlockCache`] dispatches pre-decoded
///    micro-op traces with one revalidation per block entry.
/// 2. **Per-insn decode cache**: the fallback when block mode is disabled
///    ([`RefModel::set_block_mode`]) or a fetch straddles a page.
/// 3. **Pure interpreter**: both caches disabled
///    ([`RefModel::set_decode_cache_enabled`]) — the oracle the lockstep
///    coherence suites compare against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefModel {
    state: ArchState,
    mem: Memory,
    journal: Journal,
    pending_skip: Option<u64>,
    icache: DecodeCache,
    // Micro-ops carry function pointers, so the block cache cannot be
    // serialized; it is pure acceleration state and starts cold after
    // deserialization.
    #[serde(skip)]
    blocks: BlockCache,
}

impl RefModel {
    /// Creates a model over `mem`, starting at the RAM base (the reset PC
    /// used throughout the project).
    pub fn new(mem: Memory) -> Self {
        Self::with_pc(mem, Memory::RAM_BASE)
    }

    /// Creates a model with an explicit reset PC.
    pub fn with_pc(mem: Memory, reset_pc: u64) -> Self {
        RefModel {
            state: ArchState::new(reset_pc),
            mem,
            journal: Journal::new(),
            pending_skip: None,
            icache: DecodeCache::default(),
            blocks: BlockCache::default(),
        }
    }

    /// Reassembles a model from a restored architectural state and memory
    /// image (the [`crate::checkpoint`] codec's constructor). The journal
    /// starts empty and disabled; both execution caches start cold — they
    /// are pure acceleration state and warm back up on first use.
    pub fn from_parts(state: ArchState, mem: Memory) -> Self {
        RefModel {
            state,
            mem,
            journal: Journal::new(),
            pending_skip: None,
            icache: DecodeCache::default(),
            blocks: BlockCache::default(),
        }
    }

    /// Enables or disables the per-insn pre-decoded instruction cache (on
    /// by default). The coherence proptests disable this *and*
    /// [`set_block_mode`](Self::set_block_mode) to run a fully uncached
    /// oracle twin of the model.
    pub fn set_decode_cache_enabled(&mut self, enabled: bool) {
        self.icache.set_enabled(enabled);
    }

    /// Enables or disables basic-block compiled execution (on by default).
    /// With blocks off the model falls back to the per-insn decode cache;
    /// with both tiers off it is a pure fetch/decode/execute interpreter.
    pub fn set_block_mode(&mut self, enabled: bool) {
        self.blocks.set_enabled(enabled);
    }

    /// Decode-cache hit/miss/invalidation counters.
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.icache.stats()
    }

    /// Block-cache counters.
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.blocks.stats()
    }

    /// Built-block length distribution, indexed by length in micro-ops.
    pub fn block_len_counts(&self) -> &[u64; MAX_BLOCK_LEN + 1] {
        self.blocks.len_counts()
    }

    /// The architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Mutable access to the architectural state (test setup, fault studies).
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// The memory image.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Enables or disables the compensation journal.
    pub fn set_journal_enabled(&mut self, enabled: bool) {
        self.journal.set_enabled(enabled);
    }

    /// The journal (stats, tests).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Marks a checkpoint the model can later [`revert`](Self::revert) to.
    pub fn checkpoint(&mut self) {
        self.journal.checkpoint();
    }

    /// Rolls state and memory back to the most recent checkpoint.
    ///
    /// Returns `false` if no checkpoint exists.
    pub fn revert(&mut self) -> bool {
        if !self.journal.has_checkpoint() {
            // Nothing to roll back — and no reason to pay a cache flush.
            return false;
        }
        self.pending_skip = None;
        // Compensation entries can restore old code bytes without going
        // through the store path, so both instruction caches start over
        // (a revert can also land the PC mid-block, which the block
        // cursor must not survive).
        self.icache.flush();
        self.blocks.flush();
        self.journal.revert_into(&mut self.state, &mut self.mem)
    }

    /// Keeps only the most recent `keep` checkpoints (bounds journal memory).
    pub fn prune_checkpoints(&mut self, keep: usize) {
        self.journal.prune(keep);
    }

    /// Arms an MMIO skip: the next stepped instruction will not execute;
    /// instead its integer destination register is forced to `value`.
    pub fn skip_next(&mut self, value: u64) {
        self.pending_skip = Some(value);
    }

    /// Performs trap entry for a DUT-synchronized interrupt at the current
    /// instruction boundary (before the instruction at the current PC).
    pub fn raise_interrupt(&mut self, intr: Interrupt) {
        self.take_trap(Trap::Interrupt(intr));
    }

    /// Executes (or skips) one instruction.
    pub fn step(&mut self) -> StepOutcome {
        let pc = self.state.pc();
        // Block fast path: a validated cursor hands back the pre-decoded
        // micro-op with its executor — no fetch, no decode-cache probe.
        let (insn, exec, from_block): (Insn, ExecFn, bool) = match self.blocks.fetch(pc, &self.mem)
        {
            Some(u) => (u.insn, u.exec, true),
            None => {
                // The raw word is fetched unconditionally and is part of
                // the cache key, so a hit is bit-identical to decoding
                // by construction.
                let raw = self.mem.fetch(pc);
                let insn = match self.icache.lookup(pc, raw) {
                    Some(insn) => insn,
                    None => {
                        let insn = decode(raw);
                        self.icache.insert(pc, raw, insn);
                        insn
                    }
                };
                (insn, exec_fn(insn.op), false)
            }
        };

        if let Some(value) = self.pending_skip.take() {
            // MMIO skip: force the destination, advance, retire. Skip sync
            // is exactly the non-deterministic point block replay must not
            // coast through, so the cursor exits to the entry path.
            if insn.op.writes_fp_rd() {
                self.write_freg(insn.frd(), value);
            } else if insn.op.writes_int_rd() {
                self.write_xreg(insn.rd, value);
            }
            self.set_pc(pc.wrapping_add(4));
            self.bump_instret();
            if from_block {
                self.blocks.exit_early();
            }
            return StepOutcome::Skipped { pc, insn };
        }

        let effect = exec(&self.state, &self.mem, &insn);

        if let Some(trap) = effect.trap {
            self.take_trap(trap);
            if from_block {
                // Trap entry redirects the PC; the cursor follows (counts
                // an early exit unless the trapping op ended the block).
                self.blocks.retire(self.state.pc());
            }
            return StepOutcome::Trapped { pc, trap };
        }

        let mmio = effect.mmio;
        self.apply(&effect);
        self.bump_instret();
        // `fence`/`fence.i` is the architectural point where prior stores
        // become visible to instruction fetch; SFENCE.VMA currently decodes
        // to Illegal and traps above, so this one arm covers the flush set.
        if insn.op == Op::Fence {
            self.icache.flush();
            self.blocks.flush();
        }
        if from_block {
            if mmio {
                // MMIO touches device state the REF cannot replay; bail to
                // the interpreter-visible entry path.
                self.blocks.exit_early();
            } else {
                self.blocks.retire(self.state.pc());
            }
        }
        StepOutcome::Retired { pc, insn, effect }
    }

    /// Steps `n` instructions, returning the outcomes.
    pub fn step_n(&mut self, n: usize) -> Vec<StepOutcome> {
        (0..n).map(|_| self.step()).collect()
    }

    fn apply(&mut self, effect: &Effect) {
        if let Some((r, v)) = effect.xw {
            self.write_xreg(r, v);
        }
        if let Some((r, v)) = effect.fw {
            self.write_freg(r, v);
        }
        for w in effect.csrw.iter().flatten() {
            self.write_csr(w.0, w.1);
        }
        if let Some(w) = effect.memw {
            if w.addr >= Memory::RAM_BASE {
                self.write_mem(w.addr, w.len, w.value);
            }
            // MMIO stores are device-side effects owned by the DUT; the REF
            // discards them (the checker compares the store event itself).
        }
        if let Some(new) = effect.set_reservation {
            let old = self.state.reservation();
            self.journal.record(JournalEntry::Reservation(old));
            self.state.set_reservation(new);
        }
        self.set_pc(effect.next_pc);
    }

    fn take_trap(&mut self, trap: Trap) {
        let pc = self.state.pc();
        self.write_csr(CsrIndex::Mepc, pc);
        self.write_csr(CsrIndex::Mcause, trap.mcause());
        self.write_csr(CsrIndex::Mtval, trap.mtval());
        let status = self.state.csr(CsrIndex::Mstatus);
        let mut new_status = status;
        if status & mstatus::MIE != 0 {
            new_status |= mstatus::MPIE;
        } else {
            new_status &= !mstatus::MPIE;
        }
        new_status &= !mstatus::MIE;
        new_status = (new_status & !mstatus::MPP_MASK) | (0b11 << mstatus::MPP_SHIFT);
        self.write_csr(CsrIndex::Mstatus, new_status);
        let target = self.state.csr(CsrIndex::Mtvec) & !0b11;
        self.set_pc(target);
    }

    // Journaled writers ----------------------------------------------------

    fn set_pc(&mut self, pc: u64) {
        self.journal.record(JournalEntry::Pc(self.state.pc()));
        self.state.set_pc(pc);
    }

    fn write_xreg(&mut self, r: Reg, v: u64) {
        self.journal
            .record(JournalEntry::Xreg(r, self.state.xreg(r)));
        self.state.set_xreg(r, v);
    }

    fn write_freg(&mut self, r: FReg, v: u64) {
        self.journal
            .record(JournalEntry::Freg(r, self.state.freg(r)));
        self.state.set_freg(r, v);
    }

    fn write_csr(&mut self, c: CsrIndex, v: u64) {
        self.journal.record(JournalEntry::Csr(c, self.state.csr(c)));
        self.state.set_csr(c, v);
    }

    fn write_mem(&mut self, addr: u64, len: u8, value: u64) {
        let old = self.mem.read(addr, len as usize);
        self.journal.record(JournalEntry::Mem { addr, len, old });
        self.mem.write(addr, len as usize, value);
        self.icache.invalidate_store(addr, len as u64);
        // A store can invalidate the very block the cursor is inside
        // (self-modifying code); the cursor discovers that at its next
        // validation and exits early.
        self.blocks.invalidate_store(addr, len as u64);
    }

    fn bump_instret(&mut self) {
        self.journal
            .record(JournalEntry::Instret(self.state.instret()));
        let next = self.state.instret() + 1;
        self.state.set_instret(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_isa::encode;

    fn model_with(words: &[u32]) -> RefModel {
        let mut mem = Memory::new();
        mem.load_words(Memory::RAM_BASE, words);
        RefModel::new(mem)
    }

    #[test]
    fn straight_line_execution() {
        let mut m = model_with(&[
            encode::addi(Reg::A0, Reg::ZERO, 3),
            encode::addi(Reg::A1, Reg::A0, 4),
            encode::add(Reg::A2, Reg::A0, Reg::A1),
        ]);
        m.step_n(3);
        assert_eq!(m.state().xreg(Reg::A2), 10);
        assert_eq!(m.state().instret(), 3);
        assert_eq!(m.state().pc(), Memory::RAM_BASE + 12);
    }

    #[test]
    fn store_then_load() {
        let mut m = model_with(&[
            encode::lui(Reg::A1, 0x8000_1000u32 as i64),
            encode::addi(Reg::A0, Reg::ZERO, 55),
            encode::sd(Reg::A0, Reg::A1, 0),
            encode::ld(Reg::A2, Reg::A1, 0),
        ]);
        // lui sign-extends on RV64: 0x8000_1000 has bit31 set, producing a
        // negative value; use explicit register setup instead.
        m.state_mut().set_xreg(Reg::A1, Memory::RAM_BASE + 0x1000);
        m.step(); // lui overwritten below
        m.state_mut().set_xreg(Reg::A1, Memory::RAM_BASE + 0x1000);
        m.step_n(3);
        assert_eq!(m.state().xreg(Reg::A2), 55);
    }

    #[test]
    fn exception_enters_trap_handler() {
        let mut m = model_with(&[encode::ecall()]);
        m.state_mut()
            .set_csr(CsrIndex::Mtvec, Memory::RAM_BASE + 0x100);
        let out = m.step();
        assert!(matches!(out, StepOutcome::Trapped { .. }));
        assert_eq!(m.state().pc(), Memory::RAM_BASE + 0x100);
        assert_eq!(m.state().csr(CsrIndex::Mepc), Memory::RAM_BASE);
        assert_eq!(m.state().csr(CsrIndex::Mcause), 11);
        // Excepting instructions do not retire.
        assert_eq!(m.state().instret(), 0);
    }

    #[test]
    fn mret_round_trip() {
        let mut m = model_with(&[encode::ecall()]);
        let handler = Memory::RAM_BASE + 0x100;
        m.state_mut().set_csr(CsrIndex::Mtvec, handler);
        m.state_mut().set_csr(CsrIndex::Mstatus, mstatus::MIE);
        m.step();
        // Place an mret at the handler; it should return to mepc.
        let mepc = m.state().csr(CsrIndex::Mepc);
        let mut mem2 = m.mem().clone();
        mem2.load_words(handler, &[encode::mret()]);
        let mut m2 = RefModel::with_pc(mem2, handler);
        m2.state_mut().set_csr(CsrIndex::Mepc, mepc);
        m2.state_mut()
            .set_csr(CsrIndex::Mstatus, m.state().csr(CsrIndex::Mstatus));
        m2.step();
        assert_eq!(m2.state().pc(), mepc);
        assert!(m2.state().csr(CsrIndex::Mstatus) & mstatus::MIE != 0);
    }

    #[test]
    fn skip_forces_destination() {
        // lw a0, 0(a1) from MMIO; the checker arms a skip with the DUT value.
        let mut m = model_with(&[encode::lw(Reg::A0, Reg::A1, 0)]);
        m.state_mut().set_xreg(Reg::A1, 0x1000_0000);
        m.skip_next(0xabcd);
        let out = m.step();
        assert!(matches!(out, StepOutcome::Skipped { .. }));
        assert_eq!(m.state().xreg(Reg::A0), 0xabcd);
        assert_eq!(m.state().instret(), 1);
    }

    #[test]
    fn interrupt_entry() {
        let mut m = model_with(&[encode::nop()]);
        m.state_mut()
            .set_csr(CsrIndex::Mtvec, Memory::RAM_BASE + 0x40);
        m.raise_interrupt(Interrupt::MachineTimer);
        assert_eq!(m.state().pc(), Memory::RAM_BASE + 0x40);
        assert_eq!(m.state().csr(CsrIndex::Mcause) & 0xff, 7);
        assert_eq!(m.state().csr(CsrIndex::Mcause) >> 63, 1);
    }

    #[test]
    fn checkpoint_revert_restores_everything() {
        let mut m = model_with(&[
            encode::addi(Reg::A0, Reg::ZERO, 1),
            encode::sd(Reg::A0, Reg::A1, 0),
            encode::addi(Reg::A0, Reg::A0, 1),
        ]);
        m.state_mut().set_xreg(Reg::A1, Memory::RAM_BASE + 0x800);
        m.set_journal_enabled(true);

        let before_state = m.state().clone();
        let before_word = m.mem().read(Memory::RAM_BASE + 0x800, 8);
        m.checkpoint();
        m.step_n(3);
        assert_ne!(m.state(), &before_state);
        assert!(m.revert());
        assert_eq!(m.state(), &before_state);
        assert_eq!(m.mem().read(Memory::RAM_BASE + 0x800, 8), before_word);
    }

    #[test]
    fn revert_then_reexecute_is_deterministic() {
        let mut m = model_with(&[
            encode::addi(Reg::A0, Reg::ZERO, 7),
            encode::slli(Reg::A0, Reg::A0, 3),
        ]);
        m.set_journal_enabled(true);
        m.checkpoint();
        m.step_n(2);
        let final_a0 = m.state().xreg(Reg::A0);
        m.revert();
        m.checkpoint();
        m.step_n(2);
        assert_eq!(m.state().xreg(Reg::A0), final_a0);
    }

    #[test]
    fn mmio_store_does_not_touch_ref_memory() {
        let mut m = model_with(&[encode::sw(Reg::A0, Reg::A1, 0)]);
        m.state_mut().set_xreg(Reg::A0, 0x55);
        m.state_mut().set_xreg(Reg::A1, 0x1000_0000);
        let pages_before = m.mem().resident_pages();
        m.step();
        assert_eq!(m.mem().resident_pages(), pages_before);
    }
}
