//! Byte-image checkpoints of the reference model.
//!
//! The interval runner (FERIVer-style time-parallel verification) snapshots
//! the REF every K retired instructions and ships each snapshot to a worker
//! thread that re-seeds a fresh model from it. The serde crates in `vendor/`
//! are no-op shims, so this module hand-rolls a little-endian codec in the
//! same spirit as the socket runner's `DTH1` wire blobs: a magic/version
//! header, the full architectural state, every resident memory page (sorted
//! by address so the image is deterministic), and an FNV-1a checksum over
//! the whole payload.
//!
//! A checkpoint is *architectural only*: the journal and both execution
//! caches are deliberately not captured. They are acceleration/debugging
//! state, and a worker restoring a checkpoint wants a cold, journal-disabled
//! model anyway.

use crate::wireio::{self, put_u16, put_u32, put_u64};
use crate::{ArchState, Memory, RefModel};
use difftest_isa::csr::CSR_COUNT;

const MAGIC: &[u8; 4] = b"DTHC";
const VERSION: u16 = 1;

/// Why a checkpoint image failed to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The image is shorter than the field being read.
    Truncated,
    /// The magic bytes or version did not match.
    BadHeader,
    /// The CSR count in the image does not match this build.
    CsrCountMismatch(usize),
    /// The trailing checksum did not match the payload.
    BadChecksum,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint image truncated"),
            CheckpointError::BadHeader => write!(f, "checkpoint magic/version mismatch"),
            CheckpointError::CsrCountMismatch(n) => {
                write!(f, "checkpoint carries {n} CSRs, this build has {CSR_COUNT}")
            }
            CheckpointError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over the payload — cheap, dependency-free corruption tripwire
/// (the transport CRC story lives in the wire layer; this guards against
/// buffer-management bugs on the checkpoint path itself).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// The image-side byte plumbing (put_* builders and the bounds-checked
// slice reader) is the shared `wireio` module; only the mapping from a
// short read onto this module's error enum lives here.
impl From<wireio::ShortRead> for CheckpointError {
    fn from(_: wireio::ShortRead) -> Self {
        CheckpointError::Truncated
    }
}

/// A [`wireio::Reader`] whose underflows become
/// [`CheckpointError::Truncated`] via the `From` impl above (`?` does
/// the conversion at every call site).
type Reader<'a> = wireio::Reader<'a>;

/// Serializes the model's architectural state and resident memory into a
/// self-describing byte image.
pub fn save(model: &RefModel) -> Vec<u8> {
    let state = model.state();
    let pages = model.mem().page_images();
    let mut out =
        Vec::with_capacity(64 + 8 * (32 + 32 + CSR_COUNT) + pages.len() * (8 + Memory::PAGE_SIZE));
    out.extend_from_slice(MAGIC);
    put_u16(&mut out, VERSION);
    put_u16(&mut out, 0); // reserved
    put_u64(&mut out, state.pc());
    for &r in state.xregs() {
        put_u64(&mut out, r);
    }
    for &r in state.fregs() {
        put_u64(&mut out, r);
    }
    put_u16(&mut out, CSR_COUNT as u16);
    for &c in state.csrs() {
        put_u64(&mut out, c);
    }
    match state.reservation() {
        Some(addr) => {
            out.push(1);
            put_u64(&mut out, addr);
        }
        None => {
            out.push(0);
            put_u64(&mut out, 0);
        }
    }
    put_u64(&mut out, state.instret());
    put_u32(&mut out, pages.len() as u32);
    for (base, bytes) in pages {
        put_u64(&mut out, base);
        out.extend_from_slice(bytes);
    }
    let sum = fnv1a(&out);
    put_u64(&mut out, sum);
    out
}

/// Restores a model from an image produced by [`save`].
///
/// The result has an empty, disabled journal and cold execution caches;
/// stepping it is bit-identical to stepping the model `save` captured
/// (proptested in `tests/block_coherence.rs`).
pub fn restore(bytes: &[u8]) -> Result<RefModel, CheckpointError> {
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(tail);
    if u64::from_le_bytes(sum) != fnv1a(payload) {
        return Err(CheckpointError::BadChecksum);
    }

    let mut r = Reader::new(payload);
    if r.take(4)? != MAGIC || r.u16()? != VERSION {
        return Err(CheckpointError::BadHeader);
    }
    let _reserved = r.u16()?;
    let pc = r.u64()?;

    let mut state = ArchState::new(pc);
    let mut xregs = [0u64; 32];
    for x in &mut xregs {
        *x = r.u64()?;
    }
    state.set_xregs(xregs);
    let mut fregs = [0u64; 32];
    for x in &mut fregs {
        *x = r.u64()?;
    }
    state.set_fregs(fregs);
    let n_csrs = r.u16()? as usize;
    if n_csrs != CSR_COUNT {
        return Err(CheckpointError::CsrCountMismatch(n_csrs));
    }
    let mut csrs = [0u64; CSR_COUNT];
    for c in &mut csrs {
        *c = r.u64()?;
    }
    state.set_csrs(csrs);
    let has_reservation = r.take(1)?[0] != 0;
    let reservation = r.u64()?;
    state.set_reservation(has_reservation.then_some(reservation));
    // instret after csrs: set_instret mirrors Minstret, which the saved CSR
    // file already agrees with, so the order keeps them consistent.
    state.set_instret(r.u64()?);

    let mut mem = Memory::new();
    let n_pages = r.u32()?;
    for _ in 0..n_pages {
        let base = r.u64()?;
        let page = r.take(Memory::PAGE_SIZE)?;
        mem.install_page(base, page);
    }
    if !r.is_empty() {
        // Trailing garbage would have broken the checksum, but be strict.
        return Err(CheckpointError::BadHeader);
    }
    Ok(RefModel::from_parts(state, mem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_isa::{encode, Reg};

    fn sample_model() -> RefModel {
        let mut mem = Memory::new();
        mem.load_words(
            Memory::RAM_BASE,
            &[
                encode::addi(Reg::A0, Reg::ZERO, 5),
                encode::addi(Reg::A1, Reg::A0, 2),
                encode::add(Reg::A2, Reg::A0, Reg::A1),
                encode::sw(Reg::A2, Reg::A1, 0x40),
                encode::ebreak(),
            ],
        );
        let mut m = RefModel::new(mem);
        m.set_journal_enabled(true);
        for _ in 0..3 {
            m.step();
        }
        m
    }

    #[test]
    fn save_restore_round_trips_state_and_memory() {
        let m = sample_model();
        let img = save(&m);
        let r = restore(&img).expect("round trip");
        assert_eq!(r.state(), m.state());
        assert_eq!(
            r.mem().page_images(),
            m.mem().page_images(),
            "memory image diverged"
        );
        // Restored models start with a clean, disabled journal.
        assert!(r.journal().is_empty());
        assert!(!r.journal().is_enabled());
    }

    #[test]
    fn restored_model_steps_identically() {
        let m = sample_model();
        let mut a = restore(&save(&m)).expect("restore");
        let mut b = m.clone();
        for i in 0..4 {
            assert_eq!(a.step(), b.step(), "post-restore step {i}");
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn corruption_is_detected() {
        let m = sample_model();
        let img = save(&m);
        assert!(restore(&img[..img.len() - 1]).is_err(), "truncated tail");
        let mut flipped = img.clone();
        flipped[20] ^= 0x40;
        assert!(matches!(
            restore(&flipped),
            Err(CheckpointError::BadChecksum)
        ));
        let mut bad_magic = img.clone();
        bad_magic[0] = b'X';
        // Header corruption also trips the checksum first — both are errors.
        assert!(restore(&bad_magic).is_err());
        assert!(matches!(restore(&[]), Err(CheckpointError::Truncated)));
    }
}
