//! Property tests on the compensation journal: checkpoint → run → revert
//! restores the exact architectural state and memory, and re-execution
//! after a revert is deterministic.

use difftest_isa::{encode, Reg};
use difftest_ref::{Memory, RefModel};
use proptest::prelude::*;

/// Builds a random but safe straight-line program: arithmetic over a small
/// register pool plus loads/stores inside a scratch window.
fn program(ops: &[(u8, u8, u8, u8)]) -> Vec<u32> {
    let reg = |i: u8| Reg::new(10 + (i % 8)); // a0..a7
    let mut words = vec![
        // a1 = scratch base
        encode::lui(Reg::A1, 0x10000 << 12), // placeholder, replaced below
    ];
    words.clear();
    // Materialize the scratch base without the assembler: lui+slli trick is
    // overkill here; addiw chain from x0 works for small values, so use
    // auipc-free absolute: RAM_BASE + 0x2000 = 0x80002000.
    words.push(encode::addi(Reg::A1, Reg::ZERO, 1));
    words.push(encode::slli(Reg::A1, Reg::A1, 31)); // 0x8000_0000
    words.push(encode::addi(Reg::A2, Reg::ZERO, 1));
    words.push(encode::slli(Reg::A2, Reg::A2, 13)); // 0x2000
    words.push(encode::add(Reg::A1, Reg::A1, Reg::A2));
    for (op, a, b, c) in ops {
        let (rd, rs1, rs2) = (reg(*a), reg(*b), reg(*c));
        let w = match op % 8 {
            0 => encode::add(rd, rs1, rs2),
            1 => encode::sub(rd, rs1, rs2),
            2 => encode::xor(rd, rs1, rs2),
            3 => encode::mul(rd, rs1, rs2),
            4 => encode::addi(rd, rs1, (*c as i64) - 128),
            5 => encode::sd(rs2, Reg::A1, ((*c % 200) as i64) * 8),
            6 => encode::ld(rd, Reg::A1, ((*c % 200) as i64) * 8),
            _ => encode::sltu(rd, rs1, rs2),
        };
        // Keep a1 intact: skip ops that would overwrite the base pointer.
        if rd == Reg::A1 && op % 8 != 5 {
            words.push(encode::nop());
        } else {
            words.push(w);
        }
    }
    words.push(encode::ebreak());
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn revert_restores_state_and_memory(
        ops in proptest::collection::vec(any::<(u8, u8, u8, u8)>(), 1..150),
        split in 0usize..150,
    ) {
        let words = program(&ops);
        let mut mem = Memory::new();
        mem.load_words(Memory::RAM_BASE, &words);
        let mut m = RefModel::new(mem);
        m.set_journal_enabled(true);

        // Run a prefix, checkpoint, run a suffix, revert.
        let prefix = split % ops.len().max(1);
        m.step_n(prefix + 5); // +5 covers the base-pointer setup
        let state_at_ckpt = m.state().clone();
        let probe_addrs: Vec<u64> = (0..200).map(|i| Memory::RAM_BASE + 0x2000 + 8 * i).collect();
        let mem_at_ckpt: Vec<u64> = probe_addrs.iter().map(|a| m.mem().read(*a, 8)).collect();

        m.checkpoint();
        m.step_n(ops.len() - prefix);
        prop_assert!(m.revert());

        prop_assert_eq!(m.state(), &state_at_ckpt);
        let mem_after: Vec<u64> = probe_addrs.iter().map(|a| m.mem().read(*a, 8)).collect();
        prop_assert_eq!(mem_after, mem_at_ckpt);
    }

    #[test]
    fn reexecution_after_revert_is_deterministic(
        ops in proptest::collection::vec(any::<(u8, u8, u8, u8)>(), 1..100),
    ) {
        let words = program(&ops);
        let mut mem = Memory::new();
        mem.load_words(Memory::RAM_BASE, &words);
        let mut m = RefModel::new(mem);
        m.set_journal_enabled(true);

        m.step_n(5);
        m.checkpoint();
        let first: Vec<_> = m.step_n(ops.len());
        let state_first = m.state().clone();
        prop_assert!(m.revert());
        m.checkpoint();
        let second: Vec<_> = m.step_n(ops.len());
        prop_assert_eq!(first, second);
        prop_assert_eq!(m.state(), &state_first);
    }

    #[test]
    fn nested_checkpoints_unwind_in_order(
        ops in proptest::collection::vec(any::<(u8, u8, u8, u8)>(), 6..60),
    ) {
        let words = program(&ops);
        let mut mem = Memory::new();
        mem.load_words(Memory::RAM_BASE, &words);
        let mut m = RefModel::new(mem);
        m.set_journal_enabled(true);

        m.step_n(5);
        let s0 = m.state().clone();
        m.checkpoint();
        m.step_n(ops.len() / 3);
        let s1 = m.state().clone();
        m.checkpoint();
        m.step_n(ops.len() / 3);

        prop_assert!(m.revert());
        prop_assert_eq!(m.state(), &s1);
        prop_assert!(m.revert());
        prop_assert_eq!(m.state(), &s0);
        prop_assert!(!m.revert(), "no checkpoints remain");
    }
}
