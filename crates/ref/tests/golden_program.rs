//! Golden-program test: a hand-assembled routine with a known result runs
//! identically on the reference model — an anchor independent of the
//! generators.

use difftest_isa::{encode, Reg};
use difftest_ref::{Memory, RefModel, StepOutcome};

/// fib(20) = 6765 via an iterative loop.
fn fib_program() -> Vec<u32> {
    vec![
        encode::addi(Reg::A0, Reg::ZERO, 0),  // a = 0
        encode::addi(Reg::A1, Reg::ZERO, 1),  // b = 1
        encode::addi(Reg::A2, Reg::ZERO, 20), // n = 20
        // loop:
        encode::add(Reg::A3, Reg::A0, Reg::A1), // t = a + b
        encode::addi(Reg::A0, Reg::A1, 0),      // a = b
        encode::addi(Reg::A1, Reg::A3, 0),      // b = t
        encode::addi(Reg::A2, Reg::A2, -1),     // n -= 1
        encode::bne(Reg::A2, Reg::ZERO, -16),   // back to loop
        encode::ebreak(),
    ]
}

#[test]
fn fibonacci_matches_the_closed_form() {
    let mut mem = Memory::new();
    mem.load_words(Memory::RAM_BASE, &fib_program());
    let mut m = RefModel::new(mem);
    for _ in 0..200 {
        if let StepOutcome::Trapped { .. } = m.step() {
            break;
        }
    }
    assert_eq!(m.state().xreg(Reg::A0), 6765, "fib(20)");
    assert_eq!(m.state().instret(), 3 + 20 * 5);
}

/// Memory checksum: sum of i*i for i in 1..=16, staged through RAM at
/// `RAM_BASE + 0x1000` (materialized with shift arithmetic).
#[test]
fn square_sum_through_memory() {
    let words = vec![
        encode::addi(Reg::A0, Reg::ZERO, 0), // sum
        encode::addi(Reg::A1, Reg::ZERO, 1), // i
        encode::addi(Reg::A2, Reg::ZERO, 16),
        encode::addi(Reg::A3, Reg::ZERO, 1),
        encode::slli(Reg::A3, Reg::A3, 31), // 0x8000_0000
        encode::addi(Reg::A4, Reg::ZERO, 1),
        encode::slli(Reg::A4, Reg::A4, 12), // 0x1000
        encode::add(Reg::A3, Reg::A3, Reg::A4),
        // loop: m[base + 8i] = i*i; sum += m[...]
        encode::mul(Reg::A5, Reg::A1, Reg::A1),
        encode::slli(Reg::A6, Reg::A1, 3),
        encode::add(Reg::A6, Reg::A3, Reg::A6),
        encode::sd(Reg::A5, Reg::A6, 0),
        encode::ld(Reg::A7, Reg::A6, 0),
        encode::add(Reg::A0, Reg::A0, Reg::A7),
        encode::addi(Reg::A1, Reg::A1, 1),
        encode::bge(Reg::A2, Reg::A1, -28),
        encode::ebreak(),
    ];
    let mut mem = Memory::new();
    mem.load_words(Memory::RAM_BASE, &words);
    let mut m = RefModel::new(mem);
    for _ in 0..300 {
        if let StepOutcome::Trapped { .. } = m.step() {
            break;
        }
    }
    // sum_{1..16} i^2 = 16*17*33/6 = 1496
    assert_eq!(m.state().xreg(Reg::A0), 1496);
    // The staged values really went through memory.
    assert_eq!(m.mem().read(Memory::RAM_BASE + 0x1000 + 8 * 16, 8), 256);
}
