//! Coherence properties of basic-block compiled REF execution.
//!
//! Block mode must be bit-identical to the block-disabled interpreter:
//! same per-step outcomes, same final architectural state, same
//! compensation journal. The hard cases are driven directly — stores that
//! overwrite the *middle* of the block currently being executed, `fence`
//! inside a loop body, journal reverts landing mid-block, and MMIO skip
//! synchronization — and then every workload preset is swept for the
//! steady state.

use difftest_isa::{encode, Reg};
use difftest_ref::{checkpoint, Memory, RefModel, StepOutcome};
use difftest_workload::Workload;
use proptest::prelude::*;

/// Byte offset of the patch pool from the code base.
const POOL_OFF: i64 = 0x1000;

/// Instruction words a mutator may copy over code (all safe straight-line
/// single words, so a patched program stays patchable).
fn patch_pool() -> Vec<u32> {
    vec![
        encode::addi(Reg::A0, Reg::A0, 7),
        encode::addi(Reg::A3, Reg::A0, 1),
        encode::xor(Reg::A4, Reg::A4, Reg::A0),
        encode::nop(),
    ]
}

/// Emits the five-word prelude: `a1` = code base, `a2` = pool base.
fn prelude(words: &mut Vec<u32>) {
    words.push(encode::addi(Reg::A1, Reg::ZERO, 1));
    words.push(encode::slli(Reg::A1, Reg::A1, 31)); // 0x8000_0000
    words.push(encode::addi(Reg::A2, Reg::ZERO, 1));
    words.push(encode::slli(Reg::A2, Reg::A2, 12)); // POOL_OFF
    words.push(encode::add(Reg::A2, Reg::A1, Reg::A2));
}

/// Builds a block-mode model and a fully uncached interpreter oracle over
/// the same image and steps them in lockstep, asserting outcome, state,
/// and journal equivalence. Returns the block-mode model for stats.
fn lockstep(words: &[u32], steps: usize) -> RefModel {
    let (blocked, _) = lockstep_with(words, steps, |_, _, _| {});
    blocked
}

/// Lockstep with a per-step hook called *before* each step pair; the hook
/// may arm NDE synchronization (skips, interrupts) on both models.
fn lockstep_with(
    words: &[u32],
    steps: usize,
    mut before: impl FnMut(usize, &mut RefModel, &mut RefModel),
) -> (RefModel, RefModel) {
    let mut mem = Memory::new();
    mem.load_words(Memory::RAM_BASE, words);
    mem.load_words(Memory::RAM_BASE + POOL_OFF as u64, &patch_pool());
    let mut blocked = RefModel::new(mem.clone());
    let mut plain = RefModel::new(mem);
    // The oracle: no block cache, no decode cache — pure interpreter.
    plain.set_block_mode(false);
    plain.set_decode_cache_enabled(false);
    blocked.set_journal_enabled(true);
    plain.set_journal_enabled(true);
    for i in 0..steps {
        before(i, &mut blocked, &mut plain);
        let a = blocked.step();
        let b = plain.step();
        assert_eq!(a, b, "step {i} diverged (blocks vs interpreter)");
    }
    assert_eq!(blocked.state(), plain.state(), "final state diverged");
    assert_eq!(
        blocked.journal().entries(),
        plain.journal().entries(),
        "journals diverged"
    );
    (blocked, plain)
}

/// One generated program slot: either a plain ALU op, or a mutator that
/// copies `pool[pool_idx]` over the first word of a later slot
/// (`target_sel` picks which), optionally followed by a `fence`.
type Action = (bool, u8, u8, bool);

/// Builds a straight-line self-modifying program from `actions`. Because
/// the whole program is one fall-through run, mutators routinely patch
/// instructions *inside the block currently being executed* — the exact
/// case eager invalidation plus cursor validation must catch.
fn self_modifying(actions: &[Action]) -> Vec<u32> {
    let slot_words =
        |&(is_mut, _, _, fencei): &Action| if is_mut { 2 + usize::from(fencei) } else { 1 };
    let mut offsets = Vec::with_capacity(actions.len());
    let mut off = 5usize;
    for a in actions {
        offsets.push(off);
        off += slot_words(a);
    }

    let mut words = Vec::with_capacity(off + 1);
    prelude(&mut words);
    for (i, &(is_mut, pool_idx, target_sel, fencei)) in actions.iter().enumerate() {
        let later = actions.len() - i - 1;
        if is_mut && later > 0 {
            let target = i + 1 + (target_sel as usize) % later;
            let pool = i64::from(pool_idx % 4) * 4;
            words.push(encode::lw(Reg::T0, Reg::A2, pool));
            words.push(encode::sw(Reg::T0, Reg::A1, (offsets[target] * 4) as i64));
            if fencei {
                words.push(encode::fence());
            }
        } else {
            words.push(encode::addi(Reg::A0, Reg::A0, i64::from(pool_idx % 64)));
            for _ in 1..slot_words(&(is_mut, pool_idx, target_sel, fencei)) {
                words.push(encode::nop());
            }
        }
    }
    words.push(encode::ebreak());
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Block-mode and interpreter execution agree step-for-step on
    /// randomly generated self-modifying programs, `fence` or no `fence`.
    #[test]
    fn self_modifying_programs_are_block_transparent(
        actions in proptest::collection::vec(any::<Action>(), 1..40),
    ) {
        let words = self_modifying(&actions);
        // Straight-line: every word executes at most once; a couple of
        // extra steps land in the deterministic post-ebreak trap loop,
        // which must also agree.
        lockstep(&words, words.len() + 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Checkpoint → execute → revert → re-execute is bit-identical, with
    /// block mode on or off, across a serialization round-trip, and with
    /// a `prune` landing mid-re-execution. This is the invariant the
    /// interval runner leans on: a worker seeded from a serialized
    /// checkpoint must retrace exactly what the recording REF executed.
    #[test]
    fn checkpoint_revert_reexecute_is_bit_identical(
        preset in 0usize..6,
        seed in 0u64..1_000,
        warmup in 0usize..400,
        leg in 1usize..400,
        block in any::<bool>(),
        keep in 0usize..3,
    ) {
        let builders = [
            Workload::linux_boot, Workload::microbench, Workload::spec_like,
            Workload::mmio_heavy, Workload::trap_heavy, Workload::fuzz,
        ];
        let w = builders[preset]().seed(seed).iterations(30).build();
        let mut mem = Memory::new();
        mem.load_words(Memory::RAM_BASE, w.words());
        let mut m = RefModel::new(mem);
        m.set_block_mode(block);
        m.set_journal_enabled(true);
        for _ in 0..warmup {
            m.step();
        }
        m.checkpoint();
        let img = checkpoint::save(&m);

        // A twin restored from the serialized image starts in the same
        // architectural state and runs the leg in the *opposite* block
        // mode — the codec round-trip and block transparency compose.
        let mut twin = checkpoint::restore(&img).expect("restore of a fresh image");
        prop_assert_eq!(twin.state(), m.state(), "restore diverged from the live model");
        twin.set_block_mode(!block);
        twin.set_journal_enabled(true);

        let first: Vec<StepOutcome> = (0..leg).map(|_| m.step()).collect();
        prop_assert!(m.revert(), "revert with a live checkpoint must succeed");
        prop_assert_eq!(
            m.state(), twin.state(),
            "revert must restore exactly the checkpointed state"
        );

        // Re-execute after the revert; a checkpoint+prune pair landing
        // mid-leg (keep=0 drains the journal outright) must only discard
        // history, never perturb execution.
        let second: Vec<StepOutcome> = (0..leg)
            .map(|i| {
                if i == leg / 2 {
                    m.checkpoint();
                    m.prune_checkpoints(keep);
                }
                m.step()
            })
            .collect();
        prop_assert_eq!(&first, &second, "re-execution diverged after revert");

        let twin_leg: Vec<StepOutcome> = (0..leg).map(|_| twin.step()).collect();
        prop_assert_eq!(&first, &twin_leg, "restored twin diverged");
        prop_assert_eq!(m.state(), twin.state(), "final states diverged");
    }
}

/// A store that patches an instruction *later in the very block the cursor
/// is inside*, before that instruction executes. Strict (eager) coherence
/// requires the patched word to execute; the block must be dropped and the
/// cursor must exit early mid-run.
#[test]
fn store_into_middle_of_executing_block() {
    let mut words = Vec::new();
    prelude(&mut words);
    words.push(encode::lw(Reg::T0, Reg::A2, 0)); // pool[0] = addi a0,a0,7
    let patched = words.len() + 2; // the second addi below
    words.push(encode::sw(Reg::T0, Reg::A1, (patched * 4) as i64));
    words.push(encode::addi(Reg::A0, Reg::A0, 1));
    words.push(encode::addi(Reg::A0, Reg::A0, 1)); // overwritten in flight
    words.push(encode::ebreak());

    // The whole program is one straight-line block; run it to the ebreak.
    let m = lockstep(&words, words.len());
    assert_eq!(
        m.state().xreg(Reg::A0),
        8,
        "patched instruction must execute (1 + 7)"
    );
    let s = m.block_cache_stats();
    assert!(
        s.store_invalidations >= 1,
        "the in-flight patch must drop the block: {s:?}"
    );
    assert!(
        s.early_exits >= 1,
        "the cursor must exit mid-block after invalidation: {s:?}"
    );
}

/// A loop whose body contains `fence`: every iteration flushes the block
/// cache, and a patching store before the fence still takes effect on the
/// next iteration.
#[test]
fn fence_inside_loop_flushes_every_iteration() {
    let mut words = Vec::new();
    prelude(&mut words);
    words.push(encode::addi(Reg::A5, Reg::ZERO, 4)); // loop counter
    let loop_top = words.len();
    words.push(encode::addi(Reg::A0, Reg::A0, 1)); // patched after iter 1
    words.push(encode::lw(Reg::T0, Reg::A2, 0)); // pool[0] = addi a0,a0,7
    words.push(encode::sw(Reg::T0, Reg::A1, (loop_top * 4) as i64));
    words.push(encode::fence());
    words.push(encode::addi(Reg::A5, Reg::A5, -1));
    let delta = (loop_top as i64 - words.len() as i64) * 4;
    words.push(encode::bne(Reg::A5, Reg::ZERO, delta));
    words.push(encode::ebreak());

    let body = 6;
    let steps = 6 + 4 * body; // prelude + counter + four iterations
    let m = lockstep(&words, steps);
    assert_eq!(
        m.state().xreg(Reg::A0),
        1 + 3 * 7,
        "iterations 2..4 execute the patched word"
    );
    let s = m.block_cache_stats();
    assert!(s.flushes >= 4, "each fence flushes the block cache: {s:?}");
}

/// A journal revert landing mid-block: the cursor must not survive, and
/// re-execution after the revert is deterministic and lockstep-identical.
#[test]
fn revert_mid_block_reexecutes_identically() {
    let mut words = Vec::new();
    for i in 0..8 {
        words.push(encode::addi(Reg::A0, Reg::A0, i + 1));
    }
    words.push(encode::ebreak());

    let mut mem = Memory::new();
    mem.load_words(Memory::RAM_BASE, &words);
    let mut blocked = RefModel::new(mem.clone());
    let mut plain = RefModel::new(mem);
    plain.set_block_mode(false);
    plain.set_decode_cache_enabled(false);
    blocked.set_journal_enabled(true);
    plain.set_journal_enabled(true);

    blocked.checkpoint();
    plain.checkpoint();
    // Stop mid-block: the 8-op run is one block, we step 4.
    for _ in 0..4 {
        assert_eq!(blocked.step(), plain.step());
    }
    assert!(blocked.revert());
    assert!(plain.revert());
    assert_eq!(blocked.state(), plain.state(), "revert diverged");
    assert!(
        blocked.block_cache_stats().flushes >= 1,
        "revert must flush the block cache"
    );
    // Re-execution from the reverted state is deterministic.
    for i in 0..8 {
        assert_eq!(blocked.step(), plain.step(), "post-revert step {i}");
    }
    assert_eq!(blocked.state(), plain.state());
    assert_eq!(blocked.state().xreg(Reg::A0), (1..=8).sum::<u64>());
}

/// MMIO skip synchronization mid-block: the armed skip forces the
/// destination on both models and the block cursor exits early rather
/// than coasting through the non-deterministic point.
#[test]
fn skip_sync_mid_block_exits_early() {
    let words = [
        encode::addi(Reg::A1, Reg::ZERO, 0x100), // a1 = MMIO-ish after shift
        encode::slli(Reg::A1, Reg::A1, 20),      // 0x1000_0000
        encode::addi(Reg::A0, Reg::A0, 1),
        encode::lw(Reg::T0, Reg::A1, 0), // MMIO load, skipped
        encode::addi(Reg::A0, Reg::A0, 2),
        encode::ebreak(),
    ];
    let (blocked, plain) = lockstep_with(&words, 5, |i, b, p| {
        if i == 3 {
            b.skip_next(0xabcd);
            p.skip_next(0xabcd);
        }
    });
    assert_eq!(blocked.state().xreg(Reg::T0), 0xabcd);
    assert_eq!(plain.state().xreg(Reg::T0), 0xabcd);
    assert_eq!(blocked.state().xreg(Reg::A0), 3);
    assert!(
        blocked.block_cache_stats().early_exits >= 1,
        "skip sync must exit the block early"
    );
}

/// Every workload preset runs identically with blocks on and off, and the
/// block cache earns its keep (more entry hits than builds) on each.
#[test]
fn workload_presets_are_block_transparent() {
    let presets = [
        Workload::linux_boot(),
        Workload::microbench(),
        Workload::spec_like(),
        Workload::mmio_heavy(),
        Workload::trap_heavy(),
        Workload::fuzz(),
    ];
    for builder in presets {
        let w = builder.seed(11).iterations(40).build();
        let m = lockstep(w.words(), 12_000);
        let s = m.block_cache_stats();
        assert!(
            s.hits > s.misses,
            "{}: expected a hot block cache, got {s:?}",
            w.name()
        );
        assert!(
            s.uop_steps > s.hits,
            "{}: blocks should dispatch multiple uops per entry, got {s:?}",
            w.name()
        );
        // Every miss built a block (preset images are word-aligned, so no
        // page-straddling heads), and the length histogram records each.
        let total_builds: u64 = m.block_len_counts().iter().sum();
        assert_eq!(total_builds, s.misses, "{}", w.name());
    }
}

/// Outcome-level sanity: a block-dispatched trap still reports `Trapped`
/// with the correct PC (the classic off-by-one when a cursor advances
/// before the trap is taken).
#[test]
fn trap_mid_block_reports_faulting_pc() {
    let words = [
        encode::addi(Reg::A0, Reg::A0, 1),
        encode::addi(Reg::A1, Reg::ZERO, -1), // a1 = huge address
        encode::lw(Reg::T0, Reg::A1, 0),      // load access fault
        encode::addi(Reg::A0, Reg::A0, 2),
        encode::ebreak(),
    ];
    let mut mem = Memory::new();
    mem.load_words(Memory::RAM_BASE, &words);
    let mut m = RefModel::new(mem);
    m.step();
    m.step();
    let out = m.step();
    match out {
        StepOutcome::Trapped { pc, .. } => assert_eq!(pc, Memory::RAM_BASE + 8),
        other => panic!("expected trap, got {other:?}"),
    }
    assert!(m.block_cache_stats().early_exits >= 1);
}
