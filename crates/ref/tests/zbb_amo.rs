//! Semantics tests for the Zbb and full RV64A extensions.

use difftest_isa::{decode, encode, Op, Reg};
use difftest_ref::exec::execute;
use difftest_ref::{ArchState, Memory};

fn eval2(word: u32, a: u64, b: u64) -> u64 {
    let mut s = ArchState::new(Memory::RAM_BASE);
    s.set_xreg(Reg::A1, a);
    s.set_xreg(Reg::A2, b);
    let m = Memory::new();
    let e = execute(&s, &m, &decode(word));
    assert!(e.trap.is_none(), "unexpected trap for {:#x}", word);
    e.xw.expect("writes rd").1
}

#[test]
fn zbb_logic_ops() {
    let (rd, rs1, rs2) = (Reg::A0, Reg::A1, Reg::A2);
    assert_eq!(eval2(encode::andn(rd, rs1, rs2), 0b1100, 0b1010), 0b0100);
    assert_eq!(eval2(encode::orn(rd, rs1, rs2), 0, 0), u64::MAX);
    assert_eq!(eval2(encode::xnor(rd, rs1, rs2), 5, 5), u64::MAX);
}

#[test]
fn zbb_min_max() {
    let (rd, rs1, rs2) = (Reg::A0, Reg::A1, Reg::A2);
    let neg1 = u64::MAX; // -1 signed
    assert_eq!(eval2(encode::min(rd, rs1, rs2), neg1, 3), neg1);
    assert_eq!(eval2(encode::max(rd, rs1, rs2), neg1, 3), 3);
    assert_eq!(eval2(encode::minu(rd, rs1, rs2), neg1, 3), 3);
    assert_eq!(eval2(encode::maxu(rd, rs1, rs2), neg1, 3), neg1);
}

#[test]
fn zbb_rotates() {
    let (rd, rs1, rs2) = (Reg::A0, Reg::A1, Reg::A2);
    assert_eq!(eval2(encode::rol(rd, rs1, rs2), 1, 1), 2);
    assert_eq!(eval2(encode::ror(rd, rs1, rs2), 1, 1), 1 << 63);
    assert_eq!(eval2(encode::rori(rd, rs1, 4), 0x10, 0), 1);
    // Rotation counts wrap modulo 64.
    assert_eq!(eval2(encode::rol(rd, rs1, rs2), 7, 64), 7);
}

#[test]
fn zbb_counts_and_extends() {
    let (rd, rs1) = (Reg::A0, Reg::A1);
    assert_eq!(eval2(encode::clz(rd, rs1), 1, 0), 63);
    assert_eq!(eval2(encode::clz(rd, rs1), 0, 0), 64);
    assert_eq!(eval2(encode::ctz(rd, rs1), 0x8, 0), 3);
    assert_eq!(eval2(encode::cpop(rd, rs1), 0xf0f0, 0), 8);
    assert_eq!(eval2(encode::sext_b(rd, rs1), 0x80, 0), u64::MAX << 7);
    assert_eq!(eval2(encode::sext_h(rd, rs1), 0x8000, 0), u64::MAX << 15);
    assert_eq!(eval2(encode::zext_h(rd, rs1), 0xdead_beef, 0), 0xbeef);
    assert_eq!(
        eval2(encode::rev8(rd, rs1), 0x0102_0304_0506_0708, 0),
        0x0807_0605_0403_0201
    );
    assert_eq!(
        eval2(encode::orc_b(rd, rs1), 0x0100_0000_0023_0001, 0),
        0xff00_0000_00ff_00ff
    );
}

#[test]
fn zbb_round_trips_through_decoder() {
    let pairs = [
        (encode::andn(Reg::A0, Reg::A1, Reg::A2), Op::Andn),
        (encode::orn(Reg::A0, Reg::A1, Reg::A2), Op::Orn),
        (encode::xnor(Reg::A0, Reg::A1, Reg::A2), Op::Xnor),
        (encode::min(Reg::A0, Reg::A1, Reg::A2), Op::Min),
        (encode::maxu(Reg::A0, Reg::A1, Reg::A2), Op::Maxu),
        (encode::rol(Reg::A0, Reg::A1, Reg::A2), Op::Rol),
        (encode::ror(Reg::A0, Reg::A1, Reg::A2), Op::Ror),
        (encode::rori(Reg::A0, Reg::A1, 17), Op::Rori),
        (encode::clz(Reg::A0, Reg::A1), Op::Clz),
        (encode::ctz(Reg::A0, Reg::A1), Op::Ctz),
        (encode::cpop(Reg::A0, Reg::A1), Op::Cpop),
        (encode::sext_b(Reg::A0, Reg::A1), Op::SextB),
        (encode::sext_h(Reg::A0, Reg::A1), Op::SextH),
        (encode::zext_h(Reg::A0, Reg::A1), Op::ZextH),
        (encode::rev8(Reg::A0, Reg::A1), Op::Rev8),
        (encode::orc_b(Reg::A0, Reg::A1), Op::OrcB),
    ];
    for (word, op) in pairs {
        assert_eq!(decode(word).op, op, "{word:#010x}");
        assert!(!decode(word).to_string().is_empty());
    }
    // The Zbb funct12 space does not swallow ordinary shifts.
    assert_eq!(decode(encode::slli(Reg::A0, Reg::A1, 63)).op, Op::Slli);
    assert_eq!(decode(encode::srai(Reg::A0, Reg::A1, 1)).op, Op::Srai);
}

fn amo(word: u32, mem_before: u64, rs2: u64, len: usize) -> (u64, u64) {
    let addr = Memory::RAM_BASE + 0x100;
    let mut s = ArchState::new(Memory::RAM_BASE);
    s.set_xreg(Reg::A1, addr);
    s.set_xreg(Reg::A2, rs2);
    let mut m = Memory::new();
    m.write(addr, len, mem_before);
    let e = execute(&s, &m, &decode(word));
    let old = e.xw.expect("amo returns old value").1;
    let new = e.memw.expect("amo stores").value;
    (old, new)
}

#[test]
fn amo_variants_word_and_double() {
    let (rd, rs1, rs2) = (Reg::A0, Reg::A1, Reg::A2);
    assert_eq!(
        amo(encode::amoxor_d(rd, rs1, rs2), 0b1100, 0b1010, 8),
        (0b1100, 0b0110)
    );
    assert_eq!(
        amo(encode::amoand_d(rd, rs1, rs2), 0b1100, 0b1010, 8),
        (0b1100, 0b1000)
    );
    assert_eq!(
        amo(encode::amoor_d(rd, rs1, rs2), 0b1100, 0b1010, 8),
        (0b1100, 0b1110)
    );
    // Signed min/max on doubles.
    let neg = -5i64 as u64;
    assert_eq!(amo(encode::amomin_d(rd, rs1, rs2), neg, 3, 8), (neg, neg));
    assert_eq!(amo(encode::amomax_d(rd, rs1, rs2), neg, 3, 8), (neg, 3));
    // Unsigned min/max.
    assert_eq!(amo(encode::amominu_d(rd, rs1, rs2), neg, 3, 8), (neg, 3));
    assert_eq!(amo(encode::amomaxu_d(rd, rs1, rs2), neg, 3, 8), (neg, neg));
}

#[test]
fn amo_word_forms_sign_extend() {
    let (rd, rs1, rs2) = (Reg::A0, Reg::A1, Reg::A2);
    // 0x8000_0000 as a W operand is negative.
    let (old, new) = amo(encode::amomin_w(rd, rs1, rs2), 0x8000_0000, 1, 4);
    assert_eq!(old, 0xffff_ffff_8000_0000, "loaded value sign-extends");
    assert_eq!(new as u32, 0x8000_0000, "min picks the negative side");
    let (_, new) = amo(encode::amomaxu_w(rd, rs1, rs2), 0x8000_0000, 1, 4);
    assert_eq!(new as u32, 0x8000_0000, "unsigned max picks the large side");
    let (old, new) = amo(encode::amoadd_w(rd, rs1, rs2), 0xffff_ffff, 1, 4);
    assert_eq!(old, u64::MAX, "W-form old value sign-extends");
    assert_eq!(new as u32, 0, "wraps in 32 bits");
}
