//! Coherence properties of the REF pre-decoded instruction cache.
//!
//! Execution with the decode cache enabled must be bit-identical to
//! execution with it disabled: same per-step outcomes, same final
//! architectural state, same compensation journal. The tests drive the
//! hard cases directly — self-modifying code patching instructions both
//! ahead of and behind the program counter, with and without `fence` —
//! and then sweep every workload preset for the steady-state case.

use difftest_isa::{encode, Reg};
use difftest_ref::{Memory, RefModel};
use difftest_workload::Workload;
use proptest::prelude::*;

/// Byte offset of the patch pool from the code base.
const POOL_OFF: i64 = 0x1000;

/// Instruction words a mutator may copy over code. All are safe
/// straight-line single words, so a patched program stays patchable.
fn patch_pool() -> Vec<u32> {
    vec![
        encode::addi(Reg::A0, Reg::A0, 7),
        encode::addi(Reg::A3, Reg::A0, 1),
        encode::xor(Reg::A4, Reg::A4, Reg::A0),
        encode::nop(),
    ]
}

/// Loads `words` at the RAM base plus the patch pool, then steps a
/// cache-enabled and a cache-disabled [`RefModel`] in lockstep for
/// `steps`, asserting outcome, state, and journal equivalence.
fn lockstep(words: &[u32], steps: usize) -> RefModel {
    let mut mem = Memory::new();
    mem.load_words(Memory::RAM_BASE, words);
    mem.load_words(Memory::RAM_BASE + POOL_OFF as u64, &patch_pool());
    let mut cached = RefModel::new(mem.clone());
    let mut plain = RefModel::new(mem);
    // This suite isolates the per-insn decode-cache tier: block mode off on
    // both sides (block coherence has its own lockstep suite), and the
    // plain twin fully uncached.
    cached.set_block_mode(false);
    plain.set_block_mode(false);
    plain.set_decode_cache_enabled(false);
    cached.set_journal_enabled(true);
    plain.set_journal_enabled(true);
    for i in 0..steps {
        let a = cached.step();
        let b = plain.step();
        assert_eq!(a, b, "step {i} diverged (cached vs uncached)");
    }
    assert_eq!(cached.state(), plain.state(), "final state diverged");
    assert_eq!(
        cached.journal().entries(),
        plain.journal().entries(),
        "journals diverged"
    );
    cached
}

/// Emits the five-word prelude: `a1` = code base, `a2` = pool base.
fn prelude(words: &mut Vec<u32>) {
    words.push(encode::addi(Reg::A1, Reg::ZERO, 1));
    words.push(encode::slli(Reg::A1, Reg::A1, 31)); // 0x8000_0000
    words.push(encode::addi(Reg::A2, Reg::ZERO, 1));
    words.push(encode::slli(Reg::A2, Reg::A2, 12)); // POOL_OFF
    words.push(encode::add(Reg::A2, Reg::A1, Reg::A2));
}

/// One generated program slot: either a plain ALU op, or a mutator that
/// copies `pool[pool_idx]` over the first word of a later slot
/// (`target_sel` picks which), optionally followed by a `fence`.
type Action = (bool, u8, u8, bool);

/// Builds a straight-line self-modifying program from `actions`.
///
/// Mutators always patch *later* slots, so the overwrite is
/// architecturally visible even on a strict implementation; a patched
/// mutator degenerates into further (still safe) straight-line code.
fn self_modifying(actions: &[Action]) -> Vec<u32> {
    let slot_words =
        |&(is_mut, _, _, fencei): &Action| if is_mut { 2 + usize::from(fencei) } else { 1 };
    // Layout pass: word offset of each slot after the 5-word prelude.
    let mut offsets = Vec::with_capacity(actions.len());
    let mut off = 5usize;
    for a in actions {
        offsets.push(off);
        off += slot_words(a);
    }

    let mut words = Vec::with_capacity(off + 1);
    prelude(&mut words);
    for (i, &(is_mut, pool_idx, target_sel, fencei)) in actions.iter().enumerate() {
        let later = actions.len() - i - 1;
        if is_mut && later > 0 {
            let target = i + 1 + (target_sel as usize) % later;
            let pool = i64::from(pool_idx % 4) * 4;
            words.push(encode::lw(Reg::T0, Reg::A2, pool));
            words.push(encode::sw(Reg::T0, Reg::A1, (offsets[target] * 4) as i64));
            if fencei {
                words.push(encode::fence());
            }
        } else {
            words.push(encode::addi(Reg::A0, Reg::A0, i64::from(pool_idx % 64)));
            for _ in 1..slot_words(&(is_mut, pool_idx, target_sel, fencei)) {
                words.push(encode::nop());
            }
        }
    }
    words.push(encode::ebreak());
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cached and uncached execution agree step-for-step on randomly
    /// generated self-modifying programs, `fence` or no `fence`.
    #[test]
    fn self_modifying_programs_are_cache_transparent(
        actions in proptest::collection::vec(any::<Action>(), 1..40),
    ) {
        let words = self_modifying(&actions);
        // Straight-line: every word executes at most once; a couple of
        // extra steps land in the deterministic post-ebreak trap loop,
        // which must also agree.
        let m = lockstep(&words, words.len() + 2);
        let stats = m.decode_cache_stats();
        prop_assert_eq!(stats.hits + stats.misses, (words.len() + 2) as u64);
    }
}

/// A loop that patches an instruction it already executed (and cached):
/// iteration 1 runs `addi a0, a0, 1` then overwrites it with
/// `addi a0, a0, 7` from the pool; iteration 2 must see the new word.
/// This is the case raw-revalidation alone would *also* catch, but here
/// we additionally assert the eager store-invalidation fired.
#[test]
fn store_to_cached_line_takes_effect_on_reexecution() {
    for fencei in [false, true] {
        let mut words = Vec::new();
        prelude(&mut words);
        words.push(encode::addi(Reg::A5, Reg::ZERO, 2)); // loop counter
        let loop_top = words.len(); // patchable slot index
        words.push(encode::addi(Reg::A0, Reg::A0, 1)); // L: patched below
        words.push(encode::lw(Reg::T0, Reg::A2, 0)); // pool[0] = addi a0,a0,7
        words.push(encode::sw(Reg::T0, Reg::A1, (loop_top * 4) as i64));
        if fencei {
            words.push(encode::fence());
        }
        words.push(encode::addi(Reg::A5, Reg::A5, -1));
        let delta = (loop_top as i64 - words.len() as i64) * 4;
        words.push(encode::bne(Reg::A5, Reg::ZERO, delta));
        words.push(encode::ebreak());

        let body = 5 + usize::from(fencei);
        let steps = 6 + 2 * body; // prelude + two iterations, ebreak unexecuted
        let m = lockstep(&words, steps);
        assert_eq!(
            m.state().xreg(Reg::A0),
            8,
            "iteration 2 must execute the patched instruction (fence={fencei})"
        );
        let stats = m.decode_cache_stats();
        if fencei {
            // The per-iteration fence wipes the whole cache before any
            // line can be re-executed, so no hits — only flushes.
            assert!(stats.flushes >= 2, "each fence flushes");
        } else {
            assert!(stats.hits > 0, "the loop must actually hit the cache");
            assert!(
                stats.store_invalidations >= 2,
                "each patching store invalidates the cached line"
            );
        }
    }
}

/// Every workload preset runs identically with the cache on and off, and
/// the cache earns its keep (more hits than misses) on looping presets.
#[test]
fn workload_presets_are_cache_transparent() {
    let presets = [
        Workload::linux_boot(),
        Workload::microbench(),
        Workload::spec_like(),
        Workload::mmio_heavy(),
        Workload::trap_heavy(),
        Workload::fuzz(),
    ];
    for builder in presets {
        let w = builder.seed(11).iterations(40).build();
        let m = lockstep(w.words(), 12_000);
        let stats = m.decode_cache_stats();
        assert!(
            stats.hits > stats.misses,
            "{}: expected a hot decode cache, got {stats:?}",
            w.name()
        );
    }
}
