//! Table 7: comparison with prior hardware-accelerated co-simulation
//! frameworks.
//!
//! DiffTest-H rows come from real engine runs; IBI-check, SBS-check and
//! Fromajo rows from the published-parameter models (`difftest_core::prior`,
//! see `DESIGN.md` §1 for the substitution argument).

use difftest_bench::{boot_workload, fmt_hz, fmt_pct, run, Table, BENCH_CYCLES};
use difftest_core::prior::PriorFramework;
use difftest_core::DiffConfig;
use difftest_dut::{Dut, DutConfig};
use difftest_platform::{AreaFeatures, AreaModel, Platform};
use difftest_ref::Memory;

fn main() {
    let workload = boot_workload();
    let dut = DutConfig::xiangshan_default();

    // Verification bytes per instruction before optimization (the paper's
    // "states/bytes" column; ours measured from the monitor).
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, workload.words());
    let mut probe = Dut::new(dut.clone(), &image, Vec::new());
    let mut bytes = 0u64;
    while probe.halted().is_none() && probe.cycles() < 50_000 {
        for ev in probe.tick().events {
            bytes += ev.event.encoded_len() as u64;
        }
    }
    let bpi = bytes / probe.total_commits();
    let ipc = probe.ipc();

    let area = AreaModel::default()
        .estimate(
            dut.gates,
            dut.cores,
            dut.probes_per_core,
            AreaFeatures::full(),
        )
        .overhead_fraction();

    println!("Table 7: Comparison of hardware-accelerated co-simulation frameworks\n");
    let mut table = Table::new(
        "",
        &[
            "Work",
            "Platform",
            "States/Bytes",
            "Comm overhead",
            "Area overhead",
            "DUT-only",
            "Co-sim speed",
        ],
    );

    for prior in [PriorFramework::ibi_check(), PriorFramework::sbs_check()] {
        table.row(&prior_row(&prior, ipc));
    }
    let pldm = run(
        &dut,
        &Platform::palladium(),
        DiffConfig::BNSD,
        &workload,
        BENCH_CYCLES,
    );
    table.row(&[
        "DiffTest-H".to_owned(),
        "Palladium".to_owned(),
        format!("{} / {}", dut.event_types(), bpi),
        fmt_pct(pldm.comm_overhead_fraction()),
        fmt_pct(area),
        fmt_hz(pldm.dut_only_hz),
        fmt_hz(pldm.speed_hz),
    ]);

    table.row(&prior_row(&PriorFramework::fromajo(), ipc));
    let fpga = run(
        &dut,
        &Platform::fpga(),
        DiffConfig::BNSD,
        &workload,
        BENCH_CYCLES,
    );
    table.row(&[
        "DiffTest-H".to_owned(),
        "Xilinx VU19P".to_owned(),
        format!("{} / {}", dut.event_types(), bpi),
        fmt_pct(fpga.comm_overhead_fraction()),
        fmt_pct(area),
        fmt_hz(fpga.dut_only_hz),
        fmt_hz(fpga.speed_hz),
    ]);
    println!("{table}");

    println!(
        "\npaper row for DiffTest-H: 32 / 1200 states/bytes, 0.4% comm overhead and 478 KHz \
         on Palladium; 84% and 7.8 MHz on the VU19P ({}x over Fromajo; ours: {:.1}x)",
        7.8,
        fpga.speed_hz / PriorFramework::fromajo().cosim_speed_hz(ipc)
    );
}

fn prior_row(prior: &PriorFramework, ipc: f64) -> Vec<String> {
    vec![
        prior.name.to_owned(),
        prior.platform.to_owned(),
        format!("{} / {}", prior.states, prior.bytes_per_instr),
        fmt_pct(prior.comm_overhead(ipc)),
        prior
            .area_overhead
            .map(fmt_pct)
            .unwrap_or_else(|| "unknown".to_owned()),
        fmt_hz(prior.dut_only_hz),
        fmt_hz(prior.cosim_speed_hz(ipc)),
    ]
}
