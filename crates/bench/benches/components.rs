//! Criterion micro-benchmarks: real wall-clock throughput of the component
//! algorithms (packing, fusion, differencing, checking, DUT/REF stepping).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use difftest_core::{AccelUnit, Checker, SwUnit, Verdict};
use difftest_dut::{Dut, DutConfig};
use difftest_event::{Event, MonitoredEvent};
use difftest_ref::{Memory, RefModel};
use difftest_workload::Workload;

fn recorded_events(cycles: u64) -> (Memory, Vec<Vec<MonitoredEvent>>) {
    let w = Workload::linux_boot().seed(9).iterations(400).build();
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, w.words());
    let mut dut = Dut::new(DutConfig::xiangshan_default(), &image, Vec::new());
    let mut per_cycle = Vec::new();
    while dut.halted().is_none() && dut.cycles() < cycles {
        per_cycle.push(dut.tick().events);
    }
    (image, per_cycle)
}

fn bench_dut_cycle(c: &mut Criterion) {
    let w = Workload::linux_boot().seed(9).iterations(400).build();
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, w.words());
    let mut g = c.benchmark_group("dut");
    g.throughput(Throughput::Elements(1));
    g.bench_function("xiangshan_cycle", |b| {
        let mut dut = Dut::new(DutConfig::xiangshan_default(), &image, Vec::new());
        b.iter(|| {
            if dut.halted().is_some() {
                dut = Dut::new(DutConfig::xiangshan_default(), &image, Vec::new());
            }
            dut.tick()
        });
    });
    g.finish();
}

fn bench_ref_step(c: &mut Criterion) {
    let w = Workload::microbench().seed(9).iterations(100_000).build();
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, w.words());
    let mut g = c.benchmark_group("ref");
    g.throughput(Throughput::Elements(1));
    g.bench_function("step", |b| {
        let mut m = RefModel::new(image.clone());
        b.iter(|| m.step());
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let (_, cycles) = recorded_events(20_000);
    let events: u64 = cycles.iter().map(|c| c.len() as u64).sum();

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(events));

    g.bench_function("batch_pack", |b| {
        b.iter(|| {
            let mut accel = AccelUnit::batch(1, 4096);
            let mut out = Vec::new();
            for cyc in &cycles {
                accel.push_cycle(cyc, &mut out);
            }
            accel.flush(&mut out);
            out.len()
        });
    });

    g.bench_function("squash_batch_pack", |b| {
        b.iter(|| {
            let mut accel = AccelUnit::squash_batch(1, 4096, 32, false);
            let mut out = Vec::new();
            for cyc in &cycles {
                accel.push_cycle(cyc, &mut out);
            }
            accel.flush(&mut out);
            out.len()
        });
    });

    g.bench_function("pack_unpack_roundtrip", |b| {
        b.iter(|| {
            let mut accel = AccelUnit::batch(1, 4096);
            let mut sw = SwUnit::packed(1);
            let mut out = Vec::new();
            let mut items = 0usize;
            for cyc in &cycles {
                accel.push_cycle(cyc, &mut out);
                for t in out.drain(..) {
                    items += sw.decode(&t).expect("round-trip").len();
                }
            }
            items
        });
    });
    g.finish();
}

fn bench_checker(c: &mut Criterion) {
    let (image, cycles) = recorded_events(20_000);
    // Pre-encode the squashed stream once.
    let mut accel = AccelUnit::squash_batch(1, 4096, 32, false);
    let mut transfers = Vec::new();
    for cyc in &cycles {
        accel.push_cycle(cyc, &mut transfers);
    }
    accel.flush(&mut transfers);
    let items: u64 = transfers.iter().map(|t| t.items as u64).sum();

    let mut g = c.benchmark_group("checker");
    g.throughput(Throughput::Elements(items));
    g.bench_function("squashed_stream", |b| {
        b.iter(|| {
            let mut sw = SwUnit::packed(1);
            let mut checker = Checker::new(vec![RefModel::new(image.clone())], false);
            for t in &transfers {
                for item in sw.decode(t).expect("round-trip") {
                    match checker.process(item).expect("bug-free stream") {
                        Verdict::Continue => {}
                        Verdict::Halt { .. } => return,
                    }
                }
            }
        });
    });
    g.finish();
}

fn bench_event_codec(c: &mut Criterion) {
    let (_, cycles) = recorded_events(5_000);
    let events: Vec<Event> = cycles.iter().flatten().map(|e| e.event.clone()).collect();
    let bytes: u64 = events.iter().map(|e| e.encoded_len() as u64).sum();

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            for e in &events {
                e.encode_into(&mut buf);
            }
            buf.len()
        });
    });
    g.bench_function("encode_decode", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            let mut out = 0usize;
            for e in &events {
                buf.clear();
                e.encode_into(&mut buf);
                out += Event::decode(e.kind(), &buf)
                    .expect("round-trip")
                    .encoded_len();
            }
            out
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dut_cycle, bench_ref_step, bench_pipeline, bench_checker, bench_event_codec
}
criterion_main!(benches);
