//! Table 5: optimization breakdown across DUTs and platforms.
//!
//! Reproduces the incremental Baseline → +Batch → +NonBlock → +Squash
//! speedups on NutShell/Palladium, XiangShan/Palladium and XiangShan/FPGA,
//! and the §6.3 communication-overhead reductions.

use difftest_bench::{boot_workload, fmt_hz, fmt_pct, fmt_ratio, run, Setup, Table, BENCH_CYCLES};
use difftest_core::DiffConfig;

const PAPER: [[f64; 4]; 3] = [
    [14e3, 102e3, 389e3, 1030e3],
    [6e3, 24e3, 71e3, 478e3],
    [0.1e6, 1.3e6, 2.2e6, 7.8e6],
];

fn main() {
    let workload = boot_workload();
    println!("Table 5: Optimization breakdown across DUTs and platforms");
    println!("(paper values in parentheses; speedups are over each setup's own baseline)\n");

    for (setup, paper_row) in Setup::table5().into_iter().zip(PAPER) {
        let mut table = Table::new(
            setup.name.clone(),
            &["Setup", "Speed", "Speedup", "Comm overhead"],
        );
        let mut baseline_hz = 0.0;
        let mut final_overhead = 0.0;
        let mut baseline_overhead_s = 0.0;
        let mut final_overhead_s = 0.0;
        for (i, config) in DiffConfig::ALL.into_iter().enumerate() {
            let report = run(&setup.dut, &setup.platform, config, &workload, BENCH_CYCLES);
            if i == 0 {
                baseline_hz = report.speed_hz;
                baseline_overhead_s = report.sim_time_s - report.cycles as f64 / report.dut_only_hz;
            }
            if i == 3 {
                final_overhead = report.comm_overhead_fraction();
                final_overhead_s = report.sim_time_s - report.cycles as f64 / report.dut_only_hz;
            }
            let paper_speed = paper_row[i];
            let paper_ratio = paper_row[i] / paper_row[0];
            table.row(&[
                config.label().to_owned(),
                format!("{} ({})", fmt_hz(report.speed_hz), fmt_hz(paper_speed)),
                format!(
                    "{} ({})",
                    fmt_ratio(report.speed_hz / baseline_hz),
                    fmt_ratio(paper_ratio)
                ),
                fmt_pct(report.comm_overhead_fraction()),
            ]);
        }
        println!("{table}");
        let reduction = 1.0 - final_overhead_s / baseline_overhead_s;
        println!(
            "communication overhead cut by {} vs baseline (paper: 99.8% PLDM / 98.8% FPGA); \
             residual overhead {}\n",
            fmt_pct(reduction),
            fmt_pct(final_overhead),
        );
    }
}
