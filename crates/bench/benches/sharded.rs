//! Host-side parallelism: single-consumer threaded runner vs the per-core
//! sharded runner, on a dual-core XiangShan (Minimal) DUT.
//!
//! Both runners use the pooled zero-copy transport; the comparison
//! isolates the checking topology (one consumer thread for all cores vs
//! one worker per core). Also reports the producer-side buffer-pool
//! recycle rate, which should be ~100% after warmup.

use difftest_bench::{fmt_pct, Table};
use difftest_core::engine::DiffConfig;
use difftest_core::{run_sharded, run_sharded_faulty, run_threaded, FaultPlan, RunOutcome};
use difftest_dut::DutConfig;
use difftest_workload::Workload;

fn dual_core_minimal() -> DutConfig {
    let mut cfg = DutConfig::xiangshan_minimal();
    cfg.cores = 2;
    cfg
}

fn main() {
    // `cargo bench -- --test` smoke mode runs one short repetition.
    let smoke = std::env::args().any(|a| a == "--test");
    let (iters, reps) = if smoke { (200, 1) } else { (3_000, 3) };
    let w = Workload::microbench().seed(11).iterations(iters).build();
    let max_cycles = 50_000_000;
    let depth = 64;

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("Host-side parallelism: threaded (1 consumer) vs sharded (1 worker/core)");
    println!("dual-core XiangShan (Minimal), BNSD, queue depth {depth}, host CPUs {host_cpus}\n");
    if host_cpus < 3 {
        println!(
            "NOTE: the sharded topology needs at least 1 producer + 2 worker host\n\
             CPUs to overlap; on {host_cpus} CPU(s) the threads serialize and the\n\
             comparison measures topology overhead, not parallel speedup.\n"
        );
    }

    let mut table = Table::new(
        "Wall-clock checking throughput",
        &[
            "runner", "outcome", "items", "items/s", "cycles/s", "speedup", "pool hit",
        ],
    );

    // Best-of-N to damp scheduler noise.
    let mut best_threaded: Option<difftest_core::ThreadedReport> = None;
    let mut best_sharded: Option<difftest_core::ShardedReport> = None;
    for _ in 0..reps {
        let t = run_threaded(
            dual_core_minimal(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            max_cycles,
            depth,
        );
        assert_eq!(t.outcome, RunOutcome::GoodTrap, "bench workload must pass");
        if best_threaded.as_ref().is_none_or(|b| t.wall_s < b.wall_s) {
            best_threaded = Some(t);
        }
        let s = run_sharded(
            dual_core_minimal(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            max_cycles,
            depth,
        );
        assert_eq!(s.outcome, RunOutcome::GoodTrap, "bench workload must pass");
        if best_sharded.as_ref().is_none_or(|b| s.wall_s < b.wall_s) {
            best_sharded = Some(s);
        }
    }
    let t = best_threaded.expect("at least one rep");
    let s = best_sharded.expect("at least one rep");
    assert_eq!(t.items, s.items, "runners must check the identical stream");

    let t_items_s = t.items as f64 / t.wall_s.max(1e-9);
    let s_items_s = s.items as f64 / s.wall_s.max(1e-9);
    table.row(&[
        "threaded".to_owned(),
        format!("{:?}", t.outcome),
        t.items.to_string(),
        format!("{t_items_s:.0}"),
        format!("{:.0}", t.cycles_per_sec),
        "1.00x".to_owned(),
        "-".to_owned(),
    ]);
    table.row(&[
        "sharded".to_owned(),
        format!("{:?}", s.outcome),
        s.items.to_string(),
        format!("{s_items_s:.0}"),
        format!("{:.0}", s.cycles_per_sec),
        format!("{:.2}x", s_items_s / t_items_s),
        fmt_pct(s.pool.hit_rate()),
    ]);
    println!("{table}");

    println!("per-worker breakdown:");
    for wk in &s.workers {
        println!(
            "  core {}: {} items, {:.0} items/s, {} instructions",
            wk.core, wk.items, wk.items_per_sec, wk.instructions
        );
    }
    println!(
        "\npool: {:?} (hit rate {})",
        s.pool,
        fmt_pct(s.pool.hit_rate())
    );

    // Observability: where the host wall-time went and how the packets
    // were shaped (the merged per-worker registry of the best run).
    println!("\nphase breakdown (sharded, producer + workers merged):");
    let total = s.metrics.phases.total_ns().max(1);
    for (phase, nanos) in s.metrics.phases.iter() {
        println!(
            "  {:<10} {:>12} ns  {:>5.1}%",
            phase.name(),
            nanos,
            nanos as f64 * 100.0 / total as f64
        );
    }
    println!("packet histograms:");
    for (name, h) in s.metrics.histograms() {
        println!(
            "  {:<14} n={:<8} min={:<6} p50={:<6} p99={:<6} max={:<6} mean={:.1}",
            name,
            h.count(),
            h.min(),
            h.percentile(50.0),
            h.percentile(99.0),
            h.max(),
            h.mean()
        );
    }
    // Optional lossy-link mode: DIFFTEST_FAULTS=<per-mille>[:<seed>] runs
    // the sharded topology once more behind a seeded uniform fault plan
    // (difftest_core::FaultPlan) and reports what the link layer saw.
    // The clean rows above already pay the CRC framing cost — its byte
    // overhead is bounded (<2%) by the fault_link test suite.
    if let Ok(spec) = std::env::var("DIFFTEST_FAULTS") {
        let (rate, seed) = match spec.split_once(':') {
            Some((r, s)) => (r.parse().unwrap_or(20u16), s.parse().unwrap_or(1u64)),
            None => (spec.parse().unwrap_or(20u16), 1u64),
        };
        let plan = FaultPlan::uniform(seed, rate);
        let f = run_sharded_faulty(
            dual_core_minimal(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            max_cycles,
            depth,
            Some(plan),
        );
        println!(
            "\nlossy link (uniform {rate}\u{2030}, seed {seed}): outcome {:?}",
            f.outcome
        );
        if let Some(fs) = f.fault {
            println!(
                "  injected: {} drops, {} dups, {} reorders, {} truncations, {} corruptions",
                fs.dropped, fs.duplicated, fs.reordered, fs.truncated, fs.corrupted
            );
        }
        println!(
            "  detected: {} typed link errors, {} stale duplicates discarded",
            f.link.total_detected(),
            f.link.stale_dropped
        );
    }

    if !smoke {
        let needed = 3; // 1 producer + 2 workers for a dual-core DUT
        if host_cpus >= needed {
            println!(
                "\nsharded vs threaded: {:.2}x items/s (target >= 1.3x on 2 cores)",
                s_items_s / t_items_s
            );
        } else {
            println!(
                "\nsharded vs threaded: {:.2}x items/s (serialized: host has \
                 {host_cpus} CPU(s), topology needs {needed} to overlap)",
                s_items_s / t_items_s
            );
        }
    }
}
