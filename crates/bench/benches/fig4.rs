//! Figure 4 (and Table 4): verification event sizes and invocation rates.
//!
//! Runs the XiangShan-default monitor on the boot workload and reports,
//! per event type in increasing size order, the encoded size and the
//! invocations per cycle — the structural diversity (sizes spread ~170×,
//! small events most frequent) that motivates Batch. Also reports the
//! average verification bytes per instruction for every DUT configuration
//! against the paper's Table 4.

use difftest_bench::{boot_workload, Table};
use difftest_dut::{Dut, DutConfig};
use difftest_event::EventKind;
use difftest_ref::Memory;

fn main() {
    let workload = boot_workload();
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, workload.words());

    println!("Figure 4: event size and invocations (XiangShan default, boot workload)\n");
    let mut dut = Dut::new(DutConfig::xiangshan_default(), &image, Vec::new());
    let mut invocations = [0u64; EventKind::COUNT];
    while dut.halted().is_none() && dut.cycles() < 150_000 {
        for ev in dut.tick().events {
            invocations[ev.event.kind() as usize] += 1;
        }
    }
    let cycles = dut.cycles() as f64;

    let mut kinds: Vec<EventKind> = EventKind::ALL.to_vec();
    kinds.sort_by_key(|k| k.encoded_len());
    let mut table = Table::new(
        "Event types ordered by size",
        &["ID", "Event", "Category", "Size (B)", "Invocations/cycle"],
    );
    for (id, kind) in kinds.iter().enumerate() {
        table.row(&[
            format!("{id}"),
            kind.name().to_owned(),
            kind.category().name().to_owned(),
            format!("{}", kind.encoded_len()),
            format!("{:.4}", invocations[*kind as usize] as f64 / cycles),
        ]);
    }
    println!("{table}");

    let min = kinds.first().map(|k| k.encoded_len()).unwrap_or(1);
    let max = kinds.last().map(|k| k.encoded_len()).unwrap_or(1);
    println!(
        "size spread: {min} B .. {max} B = {}x (paper: up to 170x)\n",
        max / min
    );

    println!("Table 4: average verification bytes per instruction\n");
    let paper = [93.0, 692.0, 1437.0, 3025.0];
    let mut t4 = Table::new(
        "Verification coverage per DUT",
        &["DUT", "Gates", "Event types", "B/instr (paper)"],
    );
    for (cfg, paper_bpi) in [
        DutConfig::nutshell(),
        DutConfig::xiangshan_minimal(),
        DutConfig::xiangshan_default(),
        DutConfig::xiangshan_dual(),
    ]
    .into_iter()
    .zip(paper)
    {
        let name = cfg.name.clone();
        let gates = cfg.gates;
        let types = cfg.event_types();
        let cores = cfg.cores as f64;
        let mut dut = Dut::new(cfg, &image, Vec::new());
        let mut bytes = 0u64;
        while dut.halted().is_none() && dut.cycles() < 100_000 {
            for ev in dut.tick().events {
                bytes += ev.event.encoded_len() as u64;
            }
        }
        // The paper's dual-core row aggregates both cores' bytes against
        // one core's instruction count.
        let instr = dut.total_commits() as f64 / cores;
        t4.row(&[
            name,
            format!("{:.1} M", gates / 1e6),
            format!("{types}"),
            format!("{:.0} ({paper_bpi:.0})", bytes as f64 / instr),
        ]);
    }
    println!("{t4}");
}
