//! Figure 15: resource usage.
//!
//! Evaluates the gate-count area model for the XiangShan configurations:
//! DUT gates plus the verification units, with and without the Batch
//! packing unit. Paper: ~6% overhead without Batch, ~25% average with it.

use difftest_bench::{fmt_pct, Table};
use difftest_dut::DutConfig;
use difftest_platform::{AreaFeatures, AreaModel};

fn main() {
    println!("Figure 15: Resource usage (gate-count model, 128 probes/core)\n");
    let model = AreaModel::default();
    let mut table = Table::new(
        "Area by configuration (million gates)",
        &[
            "DUT",
            "DUT gates",
            "Monitor",
            "Squash",
            "Replay",
            "Batch",
            "Overhead w/o Batch",
            "Overhead w/ Batch",
        ],
    );
    let mut with_batch = Vec::new();
    let mut without_batch = Vec::new();
    for cfg in [
        DutConfig::xiangshan_minimal(),
        DutConfig::xiangshan_default(),
        DutConfig::xiangshan_dual(),
    ] {
        let full = model.estimate(
            cfg.gates,
            cfg.cores,
            cfg.probes_per_core,
            AreaFeatures::full(),
        );
        let lean = model.estimate(
            cfg.gates,
            cfg.cores,
            cfg.probes_per_core,
            AreaFeatures::without_batch(),
        );
        with_batch.push(full.overhead_fraction());
        without_batch.push(lean.overhead_fraction());
        table.row(&[
            cfg.name.clone(),
            format!("{:.1}", full.dut_gates / 1e6),
            format!("{:.2}", full.monitor_gates / 1e6),
            format!("{:.2}", full.squash_gates / 1e6),
            format!("{:.2}", full.replay_gates / 1e6),
            format!("{:.2}", full.batch_gates / 1e6),
            fmt_pct(lean.overhead_fraction()),
            fmt_pct(full.overhead_fraction()),
        ]);
    }
    println!("{table}");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average overhead: {} without Batch (paper ~6%), {} with Batch (paper ~25%, max 26%)",
        fmt_pct(avg(&without_batch)),
        fmt_pct(avg(&with_batch))
    );
}
