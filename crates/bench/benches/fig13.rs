//! Figure 13: performance comparison across DUT scales.
//!
//! For each of the four DUT configurations, compares: (a) 16-thread
//! Verilator co-simulation, (b) the unoptimized Palladium baseline,
//! (c) DiffTest-H on Palladium, and (d) the DUT-only Palladium speed (the
//! theoretical maximum). Paper anchors for XiangShan-default: ~4 KHz
//! Verilator, ~6 KHz baseline, 478 KHz DiffTest-H, ~480 KHz DUT-only.

use difftest_bench::{boot_workload, fmt_hz, fmt_ratio, run, Setup, Table, BENCH_CYCLES};
use difftest_core::DiffConfig;
use difftest_platform::Platform;

fn main() {
    let workload = boot_workload();
    println!("Figure 13: Performance comparison (boot workload)\n");

    let mut table = Table::new(
        "Co-simulation speed by DUT scale",
        &[
            "DUT",
            "Verilator-16T",
            "Baseline PLDM",
            "DiffTest-H PLDM",
            "DUT-only PLDM",
            "H vs base",
            "H vs Verilator",
        ],
    );

    for dut in Setup::dut_scales() {
        let verilator = Platform::verilator(16);
        let palladium = Platform::palladium();

        // On an RTL simulator the engine's virtual time is dominated by the
        // simulator's own cycle cost; fewer cycles keep the bench fast.
        let v = run(&dut, &verilator, DiffConfig::Z, &workload, BENCH_CYCLES / 3);
        let base = run(&dut, &palladium, DiffConfig::Z, &workload, BENCH_CYCLES / 3);
        let h = run(&dut, &palladium, DiffConfig::BNSD, &workload, BENCH_CYCLES);
        let dut_only = palladium.dut_only_hz(dut.gates);

        table.row(&[
            dut.name.clone(),
            fmt_hz(v.speed_hz),
            fmt_hz(base.speed_hz),
            fmt_hz(h.speed_hz),
            fmt_hz(dut_only),
            fmt_ratio(h.speed_hz / base.speed_hz),
            fmt_ratio(h.speed_hz / v.speed_hz),
        ]);
    }
    println!("{table}");
    println!(
        "paper anchors (XiangShan default): Verilator ~4 KHz, baseline ~6 KHz, \
         DiffTest-H 478 KHz (80x over baseline, 119x over Verilator), DUT-only ~480 KHz"
    );
    println!("paper: DiffTest-H delivers >74x over baseline across all DUT scales");
}
