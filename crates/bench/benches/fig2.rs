//! Figure 2: overhead breakdown across DUTs and platforms.
//!
//! Runs the unoptimized (baseline) engine and attributes communication
//! overhead to the three LogGP phases: startup, data transmission and
//! software processing. The paper's qualitative findings: XiangShan incurs
//! higher transmission and software shares than NutShell on Palladium, and
//! the FPGA shows a higher startup share with a lower transmission share
//! than Palladium.

use difftest_bench::{boot_workload, fmt_pct, run, Setup, Table, BENCH_CYCLES};
use difftest_core::DiffConfig;

fn main() {
    let workload = boot_workload();
    println!("Figure 2: Overhead breakdown across DUTs and platforms (baseline)\n");

    let mut table = Table::new(
        "Baseline communication overhead by phase",
        &[
            "Setup",
            "Startup",
            "Transmission",
            "Software",
            "Overhead/cycle",
        ],
    );
    let mut rows = Vec::new();
    for setup in Setup::table5() {
        let report = run(
            &setup.dut,
            &setup.platform,
            DiffConfig::Z,
            &workload,
            BENCH_CYCLES,
        );
        let [startup, trans, sw] = report.overhead.fractions();
        rows.push((setup.name.clone(), startup, trans, sw));
        table.row(&[
            setup.name,
            fmt_pct(startup),
            fmt_pct(trans),
            fmt_pct(sw),
            format!(
                "{:.1} us",
                report.overhead.total() / report.cycles as f64 * 1e6
            ),
        ]);
    }
    println!("{table}");

    // The paper's qualitative claims, checked mechanically.
    let nutshell = &rows[0];
    let xs_pldm = &rows[1];
    let xs_fpga = &rows[2];
    println!(
        "XiangShan vs NutShell on Palladium: transmission {} vs {}, software {} vs {} \
         (paper: XiangShan higher in both) -> {}",
        fmt_pct(xs_pldm.2),
        fmt_pct(nutshell.2),
        fmt_pct(xs_pldm.3),
        fmt_pct(nutshell.3),
        ok(xs_pldm.2 > nutshell.2 && xs_pldm.3 > nutshell.3)
    );
    println!(
        "FPGA vs Palladium for XiangShan: startup {} vs {}, transmission {} vs {} \
         (paper: FPGA higher startup, lower transmission) -> {}",
        fmt_pct(xs_fpga.1),
        fmt_pct(xs_pldm.1),
        fmt_pct(xs_fpga.2),
        fmt_pct(xs_pldm.2),
        ok(xs_fpga.1 > xs_pldm.1 && xs_fpga.2 < xs_pldm.2)
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "reproduced"
    } else {
        "NOT reproduced"
    }
}
