//! Host hot-path throughput baseline: events/sec and simulated-cycles/sec
//! per runner × {Batch, Squash} × {clean, faulty link}, with the seven-phase
//! PhaseTimer breakdown, on the 6-wide XiangShan (Default) DUT.
//!
//! Unlike the paper-table benches (which report *simulated* co-simulation
//! speed), this bench measures the *host* — how fast the software side
//! unpacks and checks the event stream. The figure of merit is
//! `uc_events_per_sec`: checked events divided by the wall time attributed
//! to the unpack+check phases alone (see DESIGN.md §11).
//!
//! Modes:
//!   (none)               print the table, touch nothing
//!   --test               short smoke run (CI), no recording
//!   --record <path>      full run; refresh the `current` section of the
//!                        artifact, preserving its committed `baseline`
//!                        (first recording writes baseline = current)
//!   --compare <path>     full run of the gated (engine + socket +
//!                        intervals) scenarios; fail when events_per_sec regresses
//!                        more than DIFFTEST_BENCH_TOL percent (default
//!                        10) vs the artifact's `current` section

use std::time::Instant;

use difftest_bench::record::{
    extract_num, extract_object, render_artifact, render_section, ScenarioStats,
};
use difftest_bench::Table;
use difftest_core::engine::DiffConfig;
use difftest_core::{run_runner, CoSimulation, FaultPlan, RunOutcome, RunnerKind, RunnerReport};
use difftest_dut::DutConfig;
use difftest_platform::Platform;
use difftest_stats::{Metrics, Phase, TRACE_ENV};
use difftest_workload::Workload;

const FULL_CYCLES: u64 = 150_000;
const SMOKE_CYCLES: u64 = 20_000;
const QUEUE_DEPTH: usize = 64;
const WORKLOAD_SEED: u64 = 7;
/// Large enough that the cycle budget, not the good trap, ends the run.
const WORKLOAD_ITERS: u32 = 1_000_000;
const FAULT_SEED: u64 = 9;
const FAULT_PER_MILLE: u16 = 5;

fn workload() -> Workload {
    Workload::microbench()
        .seed(WORKLOAD_SEED)
        .iterations(WORKLOAD_ITERS)
        .build()
}

/// The REF execution-cache counters every scenario surfaces (see
/// DESIGN.md §10/§13): the block trace-cache tier and the per-insn
/// decode-cache tier, including their invalidation traffic.
const CACHE_KEYS: [&str; 11] = [
    "block.hits",
    "block.misses",
    "block.store_invalidations",
    "block.flushes",
    "block.early_exits",
    "block.completed",
    "block.uop_steps",
    "decode.hits",
    "decode.misses",
    "decode.store_invalidations",
    "decode.flushes",
];

fn phase_stats(metrics: &Metrics, s: &mut ScenarioStats) {
    // Dormant-tracing guarantee (DESIGN.md §15): the gated baselines
    // are recorded with span tracing off, so a run that silently
    // started accounting spans would invalidate every comparison.
    if std::env::var_os(TRACE_ENV).is_none() {
        assert_eq!(
            metrics.counters.get("trace.spans_recorded"),
            0,
            "bench scenario ran with span tracing active"
        );
    }
    s.pack_ns = metrics.phases.get(Phase::Pack);
    s.unpack_ns = metrics.phases.get(Phase::Unpack);
    s.check_ns = metrics.phases.get(Phase::Check);
    s.phases = metrics
        .phases
        .iter()
        .map(|(p, ns)| (p.name(), ns))
        .collect();
    s.caches = CACHE_KEYS
        .iter()
        .map(|&k| (k, metrics.counters.get(k)))
        .collect();
}

fn ok_outcome(outcome: &RunOutcome, faulty: bool) -> bool {
    matches!(outcome, RunOutcome::GoodTrap | RunOutcome::MaxCycles)
        || (faulty && matches!(outcome, RunOutcome::LinkError { .. }))
}

fn run_engine(config: DiffConfig, faulty: bool, cycles: u64, w: &Workload) -> ScenarioStats {
    let mut b = CoSimulation::builder()
        .dut(DutConfig::xiangshan_default())
        .platform(Platform::palladium())
        .config(config)
        .max_cycles(cycles);
    if faulty {
        b = b.fault_plan(FaultPlan::uniform(FAULT_SEED, FAULT_PER_MILLE));
    }
    let mut sim = b.build(w).expect("bench setup is valid");
    let start = Instant::now();
    let report = sim.run();
    let wall_ns = start.elapsed().as_nanos() as u64;
    assert!(
        ok_outcome(&report.outcome, faulty),
        "engine bench run diverged: {:?}",
        report.outcome
    );
    let mut s = ScenarioStats {
        events: report.check.events,
        instructions: report.instructions,
        cycles: report.cycles,
        wall_ns,
        ..Default::default()
    };
    phase_stats(&report.metrics, &mut s);
    s.finish()
}

/// Every wall-clock substrate through the one dispatch entry point: the
/// reports share [`RunCommon`](difftest_core::RunCommon), so the bench
/// reads the same fields whichever runner produced them.
fn run_parallel(kind: RunnerKind, faulty: bool, cycles: u64, w: &Workload) -> ScenarioStats {
    run_parallel_cfg(kind, DiffConfig::BNSD, faulty, cycles, w)
}

fn run_parallel_cfg(
    kind: RunnerKind,
    config: DiffConfig,
    faulty: bool,
    cycles: u64,
    w: &Workload,
) -> ScenarioStats {
    let plan = faulty.then(|| FaultPlan::uniform(FAULT_SEED, FAULT_PER_MILLE));
    let r = run_runner(
        kind,
        DutConfig::xiangshan_default(),
        config,
        w,
        Vec::new(),
        cycles,
        QUEUE_DEPTH,
        plan,
    );
    assert!(
        ok_outcome(&r.outcome, faulty),
        "{kind} bench run diverged: {:?}",
        r.outcome
    );
    let (wall_s, _) = r.wall().expect("parallel runners measure wall time");
    // Span (critical path) for the pool-scheduled runner: the wall
    // clock this run converges to once every thread has a core, which
    // a core-count-limited bench host cannot show directly.
    let span_ns = match &r {
        RunnerReport::Intervals(ir) => (ir.span_s() * 1e9) as u64,
        _ => 0,
    };
    let mut s = ScenarioStats {
        events: r.items,
        instructions: r.instructions,
        cycles: r.cycles,
        wall_ns: (wall_s * 1e9) as u64,
        span_ns,
        ..Default::default()
    };
    phase_stats(&r.metrics, &mut s);
    s.finish()
}

/// Raw REF stepping microbench: the same workload image stepped directly
/// through `RefModel` with block-compiled execution on or off — the
/// `ref/blocks/{on,off}` pair isolates the block cache's win from the
/// rest of the pipeline. The model runs as the checker runs it: journal
/// enabled (replay support), checkpointing and pruning on a fused-window
/// cadence. All wall time is REF stepping, so it is attributed to the
/// check phase and `uc_events_per_sec` is meaningful.
fn run_ref_steps(blocks_on: bool, cycles: u64, w: &Workload) -> ScenarioStats {
    use difftest_ref::{Memory, RefModel};
    // A cycle budget feeds the 6-wide DUT multiple commits per cycle;
    // step a comparable instruction count through the bare REF.
    let steps = (cycles as usize) * 8;
    const WINDOW: usize = 1024;
    let mut mem = Memory::new();
    mem.load_words(Memory::RAM_BASE, w.words());
    let mut m = RefModel::new(mem);
    m.set_block_mode(blocks_on);
    m.set_journal_enabled(true);
    let start = Instant::now();
    for i in 0..steps {
        if i % WINDOW == 0 {
            m.checkpoint();
            m.prune_checkpoints(2);
        }
        m.step();
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let blocks = m.block_cache_stats();
    let decode = m.decode_cache_stats();
    let mut s = ScenarioStats {
        events: steps as u64,
        instructions: m.state().instret(),
        cycles,
        wall_ns,
        check_ns: wall_ns,
        ..Default::default()
    };
    s.phases = Phase::ALL.iter().map(|p| (p.name(), 0)).collect();
    s.phases[Phase::Check as usize].1 = wall_ns;
    s.caches = CACHE_KEYS
        .iter()
        .map(|&k| {
            let v = match k {
                "block.hits" => blocks.hits,
                "block.misses" => blocks.misses,
                "block.store_invalidations" => blocks.store_invalidations,
                "block.flushes" => blocks.flushes,
                "block.early_exits" => blocks.early_exits,
                "block.completed" => blocks.completed,
                "block.uop_steps" => blocks.uop_steps,
                "decode.hits" => decode.hits,
                "decode.misses" => decode.misses,
                "decode.store_invalidations" => decode.store_invalidations,
                "decode.flushes" => decode.flushes,
                _ => unreachable!(),
            };
            (k, v)
        })
        .collect();
    s.finish()
}

/// `(name, gated, closure)` for every scenario of the artifact. Gated
/// scenarios (the engine's, whose virtual-time runs are steady enough
/// to gate on, plus the socket clean run the CI smoke watches) are the
/// ones `--compare` measures and enforces.
type Runner = Box<dyn Fn(u64, &Workload) -> ScenarioStats>;

fn scenarios() -> Vec<(&'static str, bool, Runner)> {
    vec![
        (
            "engine/batch/clean",
            true,
            Box::new(|c, w| run_engine(DiffConfig::B, false, c, w)),
        ),
        (
            "engine/squash/clean",
            true,
            Box::new(|c, w| run_engine(DiffConfig::BNSD, false, c, w)),
        ),
        (
            "engine/batch/faults",
            true,
            Box::new(|c, w| run_engine(DiffConfig::B, true, c, w)),
        ),
        (
            "engine/squash/faults",
            true,
            Box::new(|c, w| run_engine(DiffConfig::BNSD, true, c, w)),
        ),
        (
            "threaded/squash/clean",
            false,
            Box::new(|c, w| run_parallel(RunnerKind::Threaded, false, c, w)),
        ),
        (
            "threaded/squash/faults",
            false,
            Box::new(|c, w| run_parallel(RunnerKind::Threaded, true, c, w)),
        ),
        (
            "sharded/squash/clean",
            false,
            Box::new(|c, w| run_parallel(RunnerKind::Sharded, false, c, w)),
        ),
        (
            "sharded/squash/faults",
            false,
            Box::new(|c, w| run_parallel(RunnerKind::Sharded, true, c, w)),
        ),
        (
            "socket/squash/clean",
            true,
            Box::new(|c, w| run_parallel(RunnerKind::Socket, false, c, w)),
        ),
        (
            "socket/squash/faults",
            false,
            Box::new(|c, w| run_parallel(RunnerKind::Socket, true, c, w)),
        ),
        (
            "intervals/squash/clean",
            true,
            Box::new(|c, w| run_parallel(RunnerKind::Intervals, false, c, w)),
        ),
        (
            "intervals/squash/faults",
            false,
            Box::new(|c, w| run_parallel(RunnerKind::Intervals, true, c, w)),
        ),
        // The batch (BN) pair is the time-parallel showcase: without
        // Squash fusion the event stream is ~5x larger and unpack+check
        // dominates the producer, so interval workers buy real
        // wall-clock; under BNSD the DUT tick dominates and intervals
        // only break even (see DESIGN.md §14).
        (
            "threaded/batch/clean",
            false,
            Box::new(|c, w| run_parallel_cfg(RunnerKind::Threaded, DiffConfig::BN, false, c, w)),
        ),
        (
            "intervals/batch/clean",
            true,
            Box::new(|c, w| run_parallel_cfg(RunnerKind::Intervals, DiffConfig::BN, false, c, w)),
        ),
        (
            "ref/blocks/on",
            true,
            Box::new(|c, w| run_ref_steps(true, c, w)),
        ),
        (
            "ref/blocks/off",
            false,
            Box::new(|c, w| run_ref_steps(false, c, w)),
        ),
    ]
}

fn measure(cycles: u64, reps: usize, gated_only: bool) -> Vec<(String, ScenarioStats)> {
    let w = workload();
    let mut out = Vec::new();
    for (name, gated, f) in scenarios() {
        if gated_only && !gated {
            continue;
        }
        // Best-of-N damps scheduler noise. Select on the unpack+check
        // phase time (the figure-of-merit denominator) rather than total
        // wall: engine wall is dominated by DUT tick simulation, so the
        // best-wall rep is not necessarily the best hot-path rep.
        let mut best: Option<ScenarioStats> = None;
        for _ in 0..reps {
            let s = f(cycles, &w);
            let key = |x: &ScenarioStats| (x.unpack_ns + x.check_ns, x.wall_ns);
            if best.as_ref().is_none_or(|b| key(&s) < key(b)) {
                best = Some(s);
            }
        }
        out.push((name.to_owned(), best.expect("at least one rep")));
    }
    out
}

fn print_table(results: &[(String, ScenarioStats)]) {
    let mut table = Table::new(
        "Host hot-path throughput (6-wide XiangShan Default)",
        &[
            "scenario",
            "events",
            "events/s",
            "cycles/s",
            "pack ms",
            "unpack ms",
            "check ms",
            "u+c ev/s",
        ],
    );
    for (name, s) in results {
        table.row(&[
            name.clone(),
            s.events.to_string(),
            format!("{:.0}", s.events_per_sec),
            format!("{:.0}", s.cycles_per_sec),
            format!("{:.2}", s.pack_ns as f64 / 1e6),
            format!("{:.2}", s.unpack_ns as f64 / 1e6),
            format!("{:.2}", s.check_ns as f64 / 1e6),
            format!("{:.0}", s.uc_events_per_sec),
        ]);
    }
    println!("{table}");
}

fn meta() -> Vec<(&'static str, String)> {
    vec![
        ("dut", "xiangshan_default (6-wide commit)".to_owned()),
        (
            "workload",
            format!("microbench seed={WORKLOAD_SEED} (cycle-budget bounded)"),
        ),
        ("cycles_budget", FULL_CYCLES.to_string()),
        (
            "note",
            "uc_events_per_sec = events / (unpack_ns + check_ns); \
             baseline is frozen at first recording, current refreshes on \
             every `make bench-record`"
                .to_owned(),
        ),
    ]
}

fn record(path: &str) {
    let results = measure(FULL_CYCLES, 5, false);
    print_table(&results);
    let current = render_section(&results);
    let baseline = match std::fs::read_to_string(path) {
        Ok(existing) => extract_object(&existing, "baseline")
            .map(str::to_owned)
            .unwrap_or_else(|| current.clone()),
        Err(_) => current.clone(),
    };
    let doc = render_artifact(&meta(), &baseline, &current);
    std::fs::write(path, &doc).expect("write artifact");
    println!("recorded {} scenarios to {path}", results.len());
    // Convenience: print the headline before/after on the 6-wide Squash run.
    let key = "engine/squash/clean";
    if let (Some(b), Some(c)) = (
        extract_object(&baseline, key).and_then(|o| extract_num(o, "uc_events_per_sec")),
        extract_object(&current, key).and_then(|o| extract_num(o, "uc_events_per_sec")),
    ) {
        println!("{key}: unpack+check {b:.0} -> {c:.0} ev/s ({:.2}x)", c / b);
    }
    // And the time-parallel claim: interval verification vs the serial
    // single-consumer checker on the same cycle budget. The comparison
    // reads the interval run's *span* (recording pass + busiest worker
    // — the schedule's critical path): measured wall only matches it
    // when the host grants each thread a core, and on an oversubscribed
    // host wall degenerates to the sum of all threads' work.
    let stats = |name: &str| results.iter().find(|(n, _)| n == name).map(|(_, s)| s);
    let workers = difftest_core::IntervalTuning::default().workers;
    for (serial_key, key) in [
        ("threaded/squash/clean", "intervals/squash/clean"),
        ("threaded/batch/clean", "intervals/batch/clean"),
    ] {
        if let (Some(serial), Some(intervals)) = (stats(serial_key), stats(key)) {
            let span = intervals.span_ns as f64;
            if span > 0.0 {
                println!(
                    "{key}: span {:.0} ms vs serial {:.0} ms wall \
                     ({:.2}x at {workers} workers; 1-thread-per-core wall, \
                     measured wall here {:.0} ms)",
                    span / 1e6,
                    serial.wall_ns as f64 / 1e6,
                    serial.wall_ns as f64 / span,
                    intervals.wall_ns as f64 / 1e6,
                );
            }
        }
    }
}

fn compare(path: &str) {
    let tol: f64 = std::env::var("DIFFTEST_BENCH_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let current = extract_object(&committed, "current").unwrap_or_else(|| {
        eprintln!("bench_compare: {path} has no `current` section");
        std::process::exit(2);
    });
    let results = measure(FULL_CYCLES, 5, true);
    print_table(&results);
    let mut failed = false;
    for (name, s) in &results {
        let Some(obj) = extract_object(current, name) else {
            println!("{name}: not in committed artifact, skipping");
            continue;
        };
        let Some(rec) = extract_num(obj, "events_per_sec") else {
            println!("{name}: no events_per_sec in committed artifact, skipping");
            continue;
        };
        // Faulty non-ARQ runs stop on the first unrecoverable link error
        // after a handful of events — their rates are too noisy to gate on.
        if extract_num(obj, "events").unwrap_or(0.0) < 10_000.0 {
            println!("{name}: recorded run too short to gate on, skipping");
            continue;
        }
        let delta_pct = (s.events_per_sec - rec) / rec.max(1e-9) * 100.0;
        let verdict = if delta_pct < -tol {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{name}: {:.0} ev/s vs recorded {rec:.0} ({delta_pct:+.1}%) {verdict}",
            s.events_per_sec
        );
        // Producer-side gate: the push-encode pack phase must not
        // silently regress either (skipped where the recorded run has
        // no consumer-visible pack attribution, e.g. the ref scenarios
        // and runners whose producer runs in another thread/process).
        let rec_pack = extract_num(obj, "pack_ns").unwrap_or(0.0);
        if rec_pack > 1e6 && s.pack_ns > 0 {
            let pack_delta_pct = (s.pack_ns as f64 - rec_pack) / rec_pack * 100.0;
            let verdict = if pack_delta_pct > tol {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{name}: pack {:.0} ms vs recorded {:.0} ms ({pack_delta_pct:+.1}%) {verdict}",
                s.pack_ns as f64 / 1e6,
                rec_pack / 1e6
            );
        }
        // Pool-scheduled runners also gate their span (critical path):
        // the recorded time-parallel speedup must not silently erode.
        let rec_span = extract_num(obj, "span_ns").unwrap_or(0.0);
        if rec_span > 0.0 && s.span_ns > 0 {
            let span_delta_pct = (s.span_ns as f64 - rec_span) / rec_span * 100.0;
            let verdict = if span_delta_pct > tol {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{name}: span {:.0} ms vs recorded {:.0} ms ({span_delta_pct:+.1}%) {verdict}",
                s.span_ns as f64 / 1e6,
                rec_span / 1e6
            );
        }
    }
    if failed {
        eprintln!("bench_compare: events/sec regressed more than {tol}% — rerun `make bench-record` if intentional");
        std::process::exit(1);
    }
    println!("bench_compare: within {tol}% of {path}");
}

/// Anchors relative artifact paths at the workspace root: cargo runs
/// bench executables with the *package* directory as CWD, but the
/// artifact lives (and is committed) at the repo root.
fn resolve(path: &str) -> String {
    if std::path::Path::new(path).is_absolute() {
        return path.to_owned();
    }
    format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"))
}

fn main() {
    // MUST be first: the socket scenarios re-execute this binary as
    // their consumer process, which diverges here.
    difftest_core::child_entry();
    let args: Vec<String> = std::env::args().collect();
    let flag = |f: &str| args.iter().position(|a| a == f);
    if let Some(i) = flag("--record") {
        record(&resolve(
            args.get(i + 1).map_or("BENCH_hotpath.json", |s| s),
        ));
    } else if let Some(i) = flag("--compare") {
        compare(&resolve(
            args.get(i + 1).map_or("BENCH_hotpath.json", |s| s),
        ));
    } else if flag("--test").is_some() {
        // CI smoke: every scenario completes at a short cycle budget.
        let results = measure(SMOKE_CYCLES, 1, false);
        print_table(&results);
        assert_eq!(results.len(), scenarios().len());
        println!("hotpath smoke: {} scenarios ok", results.len());
    } else {
        print_table(&measure(FULL_CYCLES, 2, false));
    }
}
