//! Figure 14 (and Table 6): bug detection time.
//!
//! Two parts:
//!
//! 1. **Measured**: a sample of catalog bugs is injected at small trigger
//!    points and detected end-to-end by the full DiffTest-H configuration,
//!    demonstrating that detection + Replay localization actually work.
//! 2. **Projected**: for all 19 paper-scale bugs (manifestation counts of
//!    millions to billions of cycles, Table 6 pull requests), detection
//!    time = manifestation cycles / platform co-simulation speed — the
//!    paper's "up to 2 months on Verilator vs within 11 hours on
//!    Palladium with DiffTest-H".

use difftest_bench::{boot_workload, fmt_hz, run, Table, BENCH_CYCLES};
use difftest_core::{CoSimulation, DiffConfig, RunOutcome};
use difftest_dut::{bug_catalog, BugKind, BugSpec, DutConfig};
use difftest_platform::Platform;

fn hours(cycles: u64, hz: f64) -> f64 {
    cycles as f64 / hz / 3600.0
}

fn main() {
    let workload = boot_workload();
    let dut = DutConfig::xiangshan_default();
    let palladium = Platform::palladium();

    // Measure the two speeds that convert cycles into wall-clock time.
    let h = run(&dut, &palladium, DiffConfig::BNSD, &workload, BENCH_CYCLES);
    let v = run(
        &dut,
        &Platform::verilator(16),
        DiffConfig::Z,
        &workload,
        BENCH_CYCLES / 3,
    );
    println!(
        "Figure 14: bug detection time (DiffTest-H on Palladium at {}, \
         16-thread Verilator at {})\n",
        fmt_hz(h.speed_hz),
        fmt_hz(v.speed_hz)
    );

    // Part 1: measured end-to-end detection of injected bugs.
    let mut measured = Table::new(
        "Measured: injected bugs detected end-to-end (DiffTest-H, BNSD)",
        &["Bug", "Category", "Detected", "Localized by Replay"],
    );
    for kind in [
        BugKind::RegWriteCorruption,
        BugKind::StoreValueCorruption,
        BugKind::WrongVstart,
        BugKind::CorruptMepc,
        BugKind::RefillCorruption,
        BugKind::WrongBranchTarget,
    ] {
        let mut sim = CoSimulation::builder()
            .dut(dut.clone())
            .platform(palladium.clone())
            .config(DiffConfig::BNSD)
            .bugs(vec![BugSpec::new(kind, 20_000)])
            .max_cycles(BENCH_CYCLES)
            .build(&workload)
            .expect("valid setup");
        let report = sim.run();
        let detected = report.outcome == RunOutcome::Mismatch;
        let localized = report
            .failure
            .as_ref()
            .and_then(|f| f.precise.as_ref())
            .is_some();
        measured.row(&[
            format!("{kind:?}"),
            kind.category().split(' ').next().unwrap_or("?").to_owned(),
            if detected { "yes" } else { "NO" }.to_owned(),
            if localized { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    println!("{measured}");

    // Part 2: projected detection times for the paper-scale catalog.
    let mut projected = Table::new(
        "Projected: Table 6 catalog at paper-scale manifestation counts",
        &[
            "PR",
            "Bug",
            "Manifest cycles",
            "Verilator-16T",
            "DiffTest-H PLDM",
        ],
    );
    let mut worst_verilator: f64 = 0.0;
    let mut worst_h: f64 = 0.0;
    for bug in bug_catalog() {
        let tv = hours(bug.manifest_cycles, v.speed_hz);
        let th = hours(bug.manifest_cycles, h.speed_hz);
        worst_verilator = worst_verilator.max(tv);
        worst_h = worst_h.max(th);
        projected.row(&[
            bug.label.clone(),
            format!("{:?}", bug.kind),
            format!("{:.2e}", bug.manifest_cycles as f64),
            format!("{:.1} days", tv / 24.0),
            format!("{th:.1} h"),
        ]);
    }
    println!("{projected}");
    println!(
        "worst case: {:.0} days on Verilator vs {:.1} h with DiffTest-H \
         (paper: up to ~2 months vs within 11 hours)",
        worst_verilator / 24.0,
        worst_h
    );
}
