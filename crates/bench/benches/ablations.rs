//! Ablation studies for the design choices DESIGN.md §6 calls out:
//!
//! 1. packet-capacity sweep (transmission-level packing),
//! 2. fusion-window sweep (Squash fusion depth),
//! 3. order-coupled vs order-decoupled fusion under rising NDE pressure
//!    (the paper's Fig. 8 motivation: I/O-heavy workloads break coupled
//!    fusion), and
//! 4. differencing on/off (data-volume contribution of XOR differencing),
//! 5. fixed-offset vs tight packing (paper §4.2.1: fixed-offset padding
//!    leaves >60% bubbles and needs ~1.67x more communications),
//! 6. Replay vs whole-DUT snapshot debugging (paper Fig. 10).

use difftest_bench::{boot_workload, fmt_hz, fmt_pct, Table, BENCH_CYCLES};
use difftest_core::batch::{BatchUnit, FixedOffsetPacker};
use difftest_core::snapshot::snapshot_debug_run;
use difftest_core::{CoSimulation, DiffConfig, RunOutcome, WireItem};
use difftest_dut::{BugKind, BugSpec};
use difftest_dut::{Dut, DutConfig};
use difftest_platform::Platform;
use difftest_ref::Memory;
use difftest_workload::Workload;

fn run_with(
    workload: &Workload,
    configure: impl FnOnce(difftest_core::CoSimulationBuilder) -> difftest_core::CoSimulationBuilder,
) -> difftest_core::RunReport {
    let builder = CoSimulation::builder()
        .dut(DutConfig::xiangshan_default())
        .platform(Platform::palladium())
        .config(DiffConfig::BNSD)
        .max_cycles(BENCH_CYCLES);
    let mut sim = configure(builder).build(workload).expect("valid setup");
    let report = sim.run();
    assert!(
        matches!(report.outcome, RunOutcome::GoodTrap | RunOutcome::MaxCycles),
        "ablation run diverged: {:?}",
        report.outcome
    );
    report
}

fn main() {
    let workload = boot_workload();
    println!("Ablations (XiangShan default on Palladium, BNSD unless noted)\n");

    // 1. Packet capacity sweep.
    let mut t = Table::new(
        "Packet capacity sweep",
        &["Capacity", "Transfers", "Speed", "Comm overhead"],
    );
    for cap in [1024usize, 2048, 4096, 8192, 16384] {
        let r = run_with(&workload, |b| b.packet_bytes(cap));
        t.row(&[
            format!("{cap} B"),
            format!("{}", r.invokes),
            fmt_hz(r.speed_hz),
            fmt_pct(r.comm_overhead_fraction()),
        ]);
    }
    println!("{t}");

    // 2. Fusion window sweep.
    let mut t = Table::new(
        "Fusion window sweep",
        &["Window", "Fusion ratio", "Bytes", "Speed"],
    );
    for window in [4u32, 8, 16, 32, 64, 128] {
        let r = run_with(&workload, |b| b.fusion_window(window));
        t.row(&[
            format!("{window}"),
            format!("{:.1}", r.squash.map(|s| s.fusion_ratio()).unwrap_or(0.0)),
            format!("{}", r.bytes),
            fmt_hz(r.speed_hz),
        ]);
    }
    println!("{t}");

    // 3. Order-coupled vs decoupled fusion under rising NDE pressure.
    let mut t = Table::new(
        "Order semantics: coupled vs decoupled fusion (paper Fig. 8)",
        &[
            "Workload",
            "Coupled ratio",
            "Decoupled ratio",
            "NDE breaks",
            "Coupled speed",
            "Decoupled speed",
        ],
    );
    for (name, w) in [
        (
            "microbench (no NDEs)",
            Workload::microbench().seed(5).iterations(600).build(),
        ),
        ("linux_boot", boot_workload()),
        (
            "mmio_heavy",
            Workload::mmio_heavy().seed(5).iterations(900).build(),
        ),
    ] {
        let coupled = run_with(&w, |b| b.order_coupled(true));
        let decoupled = run_with(&w, |b| b.order_coupled(false));
        t.row(&[
            name.to_owned(),
            format!(
                "{:.1}",
                coupled.squash.map(|s| s.fusion_ratio()).unwrap_or(0.0)
            ),
            format!(
                "{:.1}",
                decoupled.squash.map(|s| s.fusion_ratio()).unwrap_or(0.0)
            ),
            format!("{}", coupled.squash.map(|s| s.nde_breaks).unwrap_or(0)),
            fmt_hz(coupled.speed_hz),
            fmt_hz(decoupled.speed_hz),
        ]);
    }
    println!("{t}");

    // 4. Differencing on/off.
    let with = run_with(&workload, |b| b.differencing(true));
    let without = run_with(&workload, |b| b.differencing(false));
    let mut t = Table::new(
        "Differencing contribution",
        &["Differencing", "Bytes transferred", "Speed"],
    );
    t.row(&[
        "on".to_owned(),
        format!("{}", with.bytes),
        fmt_hz(with.speed_hz),
    ]);
    t.row(&[
        "off".to_owned(),
        format!("{}", without.bytes),
        fmt_hz(without.speed_hz),
    ]);
    println!("{t}");
    println!(
        "differencing removes {} of squashed traffic",
        fmt_pct(1.0 - with.bytes as f64 / without.bytes as f64)
    );

    // 5. Structural semantics: fixed-offset vs tight packing over the same
    //    recorded event stream.
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, workload.words());
    let dut_cfg = DutConfig::xiangshan_default();
    let mut fixed = FixedOffsetPacker::new(dut_cfg.slots.clone(), dut_cfg.cores);
    let mut tight = BatchUnit::new(dut_cfg.cores as usize, 4096);
    let mut dut = Dut::new(dut_cfg, &image, Vec::new());
    let mut fixed_bytes = 0u64;
    let mut packets = Vec::new();
    while dut.halted().is_none() && dut.cycles() < 60_000 {
        let out = dut.tick();
        if !out.events.is_empty() {
            fixed_bytes += fixed.pack_cycle(&out.events).len() as u64;
        }
        let items: Vec<WireItem> = out
            .events
            .iter()
            .map(|e| WireItem::Plain {
                core: e.core,
                event: e.event.clone(),
            })
            .collect();
        tight.push_cycle(&items, &mut packets);
    }
    packets.clear();
    tight.flush(&mut packets);
    let tight_bytes = tight.stats().bytes;
    let mut t = Table::new(
        "Structural semantics: fixed-offset vs tight packing (paper §4.2.1)",
        &["Scheme", "Bytes on wire", "4 KiB packets", "Bubbles"],
    );
    t.row(&[
        "fixed-offset".to_owned(),
        format!("{fixed_bytes}"),
        format!("{}", fixed_bytes.div_ceil(4096)),
        fmt_pct(fixed.bubble_ratio()),
    ]);
    t.row(&[
        "tight (Batch)".to_owned(),
        format!("{tight_bytes}"),
        format!("{}", tight.stats().packets),
        fmt_pct(1.0 - tight.stats().utilization()),
    ]);
    println!("{t}");
    println!(
        "fixed-offset needs {:.2}x the communications of tight packing \
         (paper: 1.67x more)\n",
        fixed_bytes as f64 / tight_bytes as f64
    );

    // 6. Behavioral semantics: Replay vs snapshot debugging (Fig. 10).
    let bug = BugSpec::new(BugKind::StoreValueCorruption, 40_000);
    let replayed = run_with_mismatch(&workload, bug.clone());
    let snap = snapshot_debug_run(
        DutConfig::xiangshan_default(),
        &workload,
        vec![bug],
        5_000,
        BENCH_CYCLES,
    );
    assert_eq!(snap.outcome, RunOutcome::Mismatch);
    let f = replayed.failure.expect("replay run mismatches");
    let mut t = Table::new(
        "Behavioral semantics: Replay vs whole-DUT snapshots (paper Fig. 10)",
        &["Strategy", "Recovery work", "Storage", "Localized"],
    );
    t.row(&[
        "Replay (DiffTest-H)".to_owned(),
        format!("{} buffered events retransmitted", f.replayed_events),
        format!("token ring slice (~{} KB)", f.replayed_events * 150 / 1024),
        if f.precise.is_some() { "yes" } else { "no" }.to_owned(),
    ]);
    t.row(&[
        "Snapshot (prior work)".to_owned(),
        format!(
            "{} DUT cycles re-executed, {} events regenerated",
            snap.reexecuted_cycles, snap.regenerated_events
        ),
        format!(
            "{} snapshots x {} KB + per-snapshot pipeline quiesce",
            snap.snapshots,
            snap.snapshot_bytes / 1024
        ),
        if snap.precise.is_some() { "yes" } else { "no" }.to_owned(),
    ]);
    println!("{t}");
}

fn run_with_mismatch(workload: &Workload, bug: BugSpec) -> difftest_core::RunReport {
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::xiangshan_default())
        .platform(Platform::palladium())
        .config(DiffConfig::BNSD)
        .bugs(vec![bug])
        .max_cycles(BENCH_CYCLES)
        .build(workload)
        .expect("valid setup");
    let r = sim.run();
    assert_eq!(r.outcome, RunOutcome::Mismatch);
    r
}
