//! Recorded benchmark artifacts (`BENCH_*.json`).
//!
//! The workspace's serde is a build-shim marker, so the artifact format is
//! rendered and re-parsed by hand here. The format is deliberately small:
//! a `baseline` section (the numbers recorded when the file was first
//! created — i.e. *before* the optimization under test) and a `current`
//! section (refreshed on every `make bench-record`). `scripts/bench_compare`
//! re-measures and fails when `events_per_sec` regresses beyond a
//! tolerance against the committed `current` numbers.

use std::fmt::Write as _;

/// One benchmark scenario's measured numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioStats {
    /// Checked events (wire items for the threaded/sharded runners).
    pub events: u64,
    /// Instructions committed by the DUT.
    pub instructions: u64,
    /// DUT cycles simulated.
    pub cycles: u64,
    /// Host wall-clock nanoseconds for the whole run.
    pub wall_ns: u64,
    /// Critical-path (span) nanoseconds for runners that schedule work
    /// across a pool: recording pass + busiest worker. `0` when the
    /// scenario has no span notion (serial and per-core runners). Wall
    /// clock only matches span when every thread has its own core, so
    /// span is what the speedup headline and the regression gate read.
    pub span_ns: u64,
    /// Checked events per host wall-clock second.
    pub events_per_sec: f64,
    /// Simulated cycles per host wall-clock second.
    pub cycles_per_sec: f64,
    /// Host nanoseconds attributed to the pack phase (producer-side
    /// encode; gated so push-encode regressions fail CI like consumer
    /// ones).
    pub pack_ns: u64,
    /// Host nanoseconds attributed to the unpack phase.
    pub unpack_ns: u64,
    /// Host nanoseconds attributed to the check phase.
    pub check_ns: u64,
    /// Events per second through the combined unpack+check phases alone —
    /// the figure of merit for the host hot-path overhaul.
    pub uc_events_per_sec: f64,
    /// All seven phases, `(name, ns)` in fixed phase order.
    pub phases: Vec<(&'static str, u64)>,
    /// REF execution-cache counters (`block.*` trace-cache and
    /// `decode.*` per-insn tiers), `(name, value)` in export order.
    pub caches: Vec<(&'static str, u64)>,
}

impl ScenarioStats {
    /// Derives the rate fields from the raw counters.
    pub fn finish(mut self) -> Self {
        let wall_s = (self.wall_ns as f64 / 1e9).max(1e-9);
        self.events_per_sec = self.events as f64 / wall_s;
        self.cycles_per_sec = self.cycles as f64 / wall_s;
        let uc_s = ((self.unpack_ns + self.check_ns) as f64 / 1e9).max(1e-9);
        self.uc_events_per_sec = self.events as f64 / uc_s;
        self
    }
}

fn render_scenario(out: &mut String, indent: &str, s: &ScenarioStats) {
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "{indent}  \"events\": {},", s.events);
    let _ = writeln!(out, "{indent}  \"instructions\": {},", s.instructions);
    let _ = writeln!(out, "{indent}  \"cycles\": {},", s.cycles);
    let _ = writeln!(out, "{indent}  \"wall_ns\": {},", s.wall_ns);
    let _ = writeln!(out, "{indent}  \"span_ns\": {},", s.span_ns);
    let _ = writeln!(
        out,
        "{indent}  \"events_per_sec\": {:.1},",
        s.events_per_sec
    );
    let _ = writeln!(
        out,
        "{indent}  \"cycles_per_sec\": {:.1},",
        s.cycles_per_sec
    );
    let _ = writeln!(out, "{indent}  \"pack_ns\": {},", s.pack_ns);
    let _ = writeln!(out, "{indent}  \"unpack_ns\": {},", s.unpack_ns);
    let _ = writeln!(out, "{indent}  \"check_ns\": {},", s.check_ns);
    let _ = writeln!(
        out,
        "{indent}  \"uc_events_per_sec\": {:.1},",
        s.uc_events_per_sec
    );
    let _ = writeln!(out, "{indent}  \"phases\": {{");
    for (i, (name, ns)) in s.phases.iter().enumerate() {
        let comma = if i + 1 == s.phases.len() { "" } else { "," };
        let _ = writeln!(out, "{indent}    \"{name}\": {ns}{comma}");
    }
    let _ = writeln!(out, "{indent}  }},");
    let _ = writeln!(out, "{indent}  \"caches\": {{");
    for (i, (name, v)) in s.caches.iter().enumerate() {
        let comma = if i + 1 == s.caches.len() { "" } else { "," };
        let _ = writeln!(out, "{indent}    \"{name}\": {v}{comma}");
    }
    let _ = writeln!(out, "{indent}  }}");
    let _ = write!(out, "{indent}}}");
}

/// Renders one `{ "scenario": {...}, ... }` section body.
pub fn render_section(scenarios: &[(String, ScenarioStats)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    for (i, (name, s)) in scenarios.iter().enumerate() {
        let _ = write!(out, "    \"{name}\": ");
        render_scenario(&mut out, "    ", s);
        out.push_str(if i + 1 == scenarios.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  }");
    out
}

/// Renders the full artifact. `baseline_section` is a pre-rendered section
/// body (either carried over from the committed artifact, or — on first
/// recording — the same numbers as `current`).
pub fn render_artifact(
    meta: &[(&str, String)],
    baseline_section: &str,
    current_section: &str,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"difftest-hotpath/v1\",\n");
    for (k, v) in meta {
        let _ = writeln!(out, "  \"{k}\": \"{v}\",");
    }
    let _ = writeln!(out, "  \"baseline\": {baseline_section},");
    let _ = writeln!(out, "  \"current\": {current_section}");
    out.push_str("}\n");
    out
}

/// Extracts the brace-balanced object following `"key":` — e.g. the
/// `baseline` section, or one scenario inside a section. Returns the
/// object text including both braces. The artifact never nests braces
/// inside strings, so plain depth counting is exact.
pub fn extract_object<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)?;
    let rest = &text[at + pat.len()..];
    let open = rest.find('{')?;
    let body = &rest[open..];
    let mut depth = 0usize;
    for (i, b) in body.bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts a numeric field (`"key": 123.4`) from an object's text.
pub fn extract_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)?;
    let rest = obj[at + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Lists the scenario names of a section body, in file order.
pub fn scenario_names(section: &str) -> Vec<String> {
    let mut names = Vec::new();
    // Scenario keys are the only quoted strings directly followed by
    // `: {` at depth 1 of the section object.
    let mut depth = 0usize;
    let bytes = section.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => depth = depth.saturating_sub(1),
            b'"' if depth == 1 => {
                if let Some(len) = section[i + 1..].find('"') {
                    let name = &section[i + 1..i + 1 + len];
                    let after = section[i + 1 + len + 1..].trim_start();
                    if after.starts_with(':') && after[1..].trim_start().starts_with('{') {
                        names.push(name.to_owned());
                    }
                    i += len + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioStats {
        ScenarioStats {
            events: 1000,
            instructions: 900,
            cycles: 500,
            wall_ns: 2_000_000_000,
            span_ns: 1_500_000_000,
            pack_ns: 100_000_000,
            unpack_ns: 250_000_000,
            check_ns: 250_000_000,
            phases: vec![("tick", 1), ("check", 250_000_000)],
            caches: vec![("block.hits", 800), ("decode.misses", 3)],
            ..Default::default()
        }
        .finish()
    }

    #[test]
    fn rates_derive_from_counters() {
        let s = sample();
        assert!((s.events_per_sec - 500.0).abs() < 1e-6);
        assert!((s.cycles_per_sec - 250.0).abs() < 1e-6);
        assert!((s.uc_events_per_sec - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn artifact_roundtrips_through_extractors() {
        let sec = render_section(&[
            ("engine/squash/clean".to_owned(), sample()),
            ("engine/batch/clean".to_owned(), sample()),
        ]);
        let doc = render_artifact(&[("dut", "xs".to_owned())], &sec, &sec);
        let cur = extract_object(&doc, "current").expect("current section");
        assert_eq!(
            scenario_names(cur),
            vec!["engine/squash/clean", "engine/batch/clean"]
        );
        let sc = extract_object(cur, "engine/squash/clean").expect("scenario");
        assert_eq!(extract_num(sc, "events"), Some(1000.0));
        assert_eq!(extract_num(sc, "events_per_sec"), Some(500.0));
        assert_eq!(extract_num(sc, "uc_events_per_sec"), Some(2000.0));
        assert_eq!(extract_num(sc, "span_ns"), Some(1_500_000_000.0));
        assert_eq!(extract_num(sc, "pack_ns"), Some(100_000_000.0));
        assert_eq!(extract_num(sc, "block.hits"), Some(800.0));
        assert_eq!(extract_num(sc, "decode.misses"), Some(3.0));
        // The baseline section survives re-rendering untouched.
        let base = extract_object(&doc, "baseline").expect("baseline section");
        let doc2 = render_artifact(&[], base, cur);
        assert_eq!(extract_object(&doc2, "baseline"), Some(base));
    }

    #[test]
    fn extract_num_handles_negatives_and_floats() {
        assert_eq!(extract_num("{\"x\": -3.5}", "x"), Some(-3.5));
        assert_eq!(extract_num("{\"x\": 7,", "x"), Some(7.0));
        assert_eq!(extract_num("{}", "x"), None);
    }
}
