//! Shared harness utilities for the per-table/per-figure benchmarks.
//!
//! Every bench target regenerates one table or figure of the paper by
//! running the co-simulation engine and printing a paper-shaped text table
//! with the paper's reported values alongside (`DESIGN.md` §4 maps each
//! experiment to its target; `EXPERIMENTS.md` records the outcomes).

pub mod record;

use difftest_core::{CoSimulation, DiffConfig, RunOutcome, RunReport};
use difftest_dut::DutConfig;
use difftest_platform::Platform;
use difftest_workload::Workload;

pub use difftest_stats::{fmt_hz, fmt_pct, fmt_ratio, Table};

/// One evaluated deployment: DUT configuration on a platform.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Display name (e.g. `"XiangShan on Palladium"`).
    pub name: String,
    /// The DUT.
    pub dut: DutConfig,
    /// The platform.
    pub platform: Platform,
}

impl Setup {
    /// The three optimization-breakdown setups of Table 5.
    pub fn table5() -> Vec<Setup> {
        vec![
            Setup {
                name: "NutShell on Palladium".to_owned(),
                dut: DutConfig::nutshell(),
                platform: Platform::palladium(),
            },
            Setup {
                name: "XiangShan on Palladium".to_owned(),
                dut: DutConfig::xiangshan_default(),
                platform: Platform::palladium(),
            },
            Setup {
                name: "XiangShan on FPGA".to_owned(),
                dut: DutConfig::xiangshan_default(),
                platform: Platform::fpga(),
            },
        ]
    }

    /// The four DUT scales of Figure 13 (all on Palladium + Verilator).
    pub fn dut_scales() -> Vec<DutConfig> {
        vec![
            DutConfig::nutshell(),
            DutConfig::xiangshan_minimal(),
            DutConfig::xiangshan_default(),
            DutConfig::xiangshan_dual(),
        ]
    }
}

/// The standard benchmark workload (the paper's Linux-boot regime).
pub fn boot_workload() -> Workload {
    Workload::linux_boot().seed(5).iterations(600).build()
}

/// Runs one configuration to completion (or the cycle cap) and returns the
/// report.
///
/// # Panics
///
/// Panics when the run detects a mismatch — benchmark runs are bug-free by
/// construction, so a mismatch is an engine defect worth failing loudly on.
pub fn run(
    dut: &DutConfig,
    platform: &Platform,
    config: DiffConfig,
    workload: &Workload,
    max_cycles: u64,
) -> RunReport {
    let mut sim = CoSimulation::builder()
        .dut(dut.clone())
        .platform(platform.clone())
        .config(config)
        .max_cycles(max_cycles)
        .build(workload)
        .expect("benchmark setup is valid");
    let report = sim.run();
    assert!(
        matches!(report.outcome, RunOutcome::GoodTrap | RunOutcome::MaxCycles),
        "benchmark run diverged: {:?} ({})",
        report.outcome,
        report
            .failure
            .as_ref()
            .map(|f| f.to_string())
            .unwrap_or_default()
    );
    report
}

/// Default cycle budget for bench runs: long enough for representative
/// event mixes, short enough to keep `cargo bench` minutes-scale.
pub const BENCH_CYCLES: u64 = 150_000;

/// Formats `ours` with the paper's reference value for the same cell.
pub fn vs_paper(ours: String, paper: &str) -> String {
    format!("{ours} (paper {paper})")
}
