//! Exception and interrupt cause codes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Synchronous exception causes (the subset raised by this project).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Exception {
    /// Instruction address misaligned (cause 0).
    InstrMisaligned = 0,
    /// Instruction access fault (cause 1).
    InstrAccessFault = 1,
    /// Illegal instruction (cause 2).
    IllegalInstr = 2,
    /// Breakpoint (cause 3).
    Breakpoint = 3,
    /// Load address misaligned (cause 4).
    LoadMisaligned = 4,
    /// Load access fault (cause 5).
    LoadAccessFault = 5,
    /// Store/AMO address misaligned (cause 6).
    StoreMisaligned = 6,
    /// Store/AMO access fault (cause 7).
    StoreAccessFault = 7,
    /// Environment call from U-mode (cause 8).
    EcallU = 8,
    /// Environment call from M-mode (cause 11).
    EcallM = 11,
}

impl Exception {
    /// The `mcause` code for this exception (interrupt bit clear).
    #[inline]
    pub const fn cause(self) -> u64 {
        self as u64
    }

    /// Reconstructs an exception from an `mcause` code.
    pub fn from_cause(cause: u64) -> Option<Exception> {
        use Exception::*;
        Some(match cause {
            0 => InstrMisaligned,
            1 => InstrAccessFault,
            2 => IllegalInstr,
            3 => Breakpoint,
            4 => LoadMisaligned,
            5 => LoadAccessFault,
            6 => StoreMisaligned,
            7 => StoreAccessFault,
            8 => EcallU,
            11 => EcallM,
            _ => return None,
        })
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Exception::InstrMisaligned => "instruction address misaligned",
            Exception::InstrAccessFault => "instruction access fault",
            Exception::IllegalInstr => "illegal instruction",
            Exception::Breakpoint => "breakpoint",
            Exception::LoadMisaligned => "load address misaligned",
            Exception::LoadAccessFault => "load access fault",
            Exception::StoreMisaligned => "store/AMO address misaligned",
            Exception::StoreAccessFault => "store/AMO access fault",
            Exception::EcallU => "environment call from U-mode",
            Exception::EcallM => "environment call from M-mode",
        };
        f.write_str(s)
    }
}

/// Asynchronous interrupt causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Interrupt {
    /// Machine software interrupt (cause 3).
    MachineSoftware = 3,
    /// Machine timer interrupt (cause 7).
    MachineTimer = 7,
    /// Machine external interrupt (cause 11).
    MachineExternal = 11,
}

impl Interrupt {
    /// The `mcause` code with the interrupt bit (bit 63) set.
    #[inline]
    pub const fn cause(self) -> u64 {
        (1u64 << 63) | self as u64
    }

    /// The corresponding `mip`/`mie` bit mask.
    #[inline]
    pub const fn pending_bit(self) -> u64 {
        1u64 << (self as u32)
    }

    /// Reconstructs an interrupt from the low bits of an `mcause` code.
    pub fn from_code(code: u64) -> Option<Interrupt> {
        Some(match code {
            3 => Interrupt::MachineSoftware,
            7 => Interrupt::MachineTimer,
            11 => Interrupt::MachineExternal,
            _ => return None,
        })
    }
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Interrupt::MachineSoftware => "machine software interrupt",
            Interrupt::MachineTimer => "machine timer interrupt",
            Interrupt::MachineExternal => "machine external interrupt",
        };
        f.write_str(s)
    }
}

/// A trap: either a synchronous exception or an asynchronous interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trap {
    /// A synchronous exception with its trap value (`mtval`).
    Exception(Exception, u64),
    /// An asynchronous interrupt.
    Interrupt(Interrupt),
}

impl Trap {
    /// The value written to `mcause` when this trap is taken.
    pub fn mcause(self) -> u64 {
        match self {
            Trap::Exception(e, _) => e.cause(),
            Trap::Interrupt(i) => i.cause(),
        }
    }

    /// The value written to `mtval` when this trap is taken.
    pub fn mtval(self) -> u64 {
        match self {
            Trap::Exception(_, tval) => tval,
            Trap::Interrupt(_) => 0,
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Exception(e, tval) => write!(f, "{e} (tval={tval:#x})"),
            Trap::Interrupt(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exception_cause_round_trip() {
        for e in [
            Exception::InstrMisaligned,
            Exception::IllegalInstr,
            Exception::Breakpoint,
            Exception::LoadMisaligned,
            Exception::LoadAccessFault,
            Exception::StoreMisaligned,
            Exception::StoreAccessFault,
            Exception::EcallU,
            Exception::EcallM,
        ] {
            assert_eq!(Exception::from_cause(e.cause()), Some(e));
        }
        assert_eq!(Exception::from_cause(31), None);
    }

    #[test]
    fn interrupt_bit_set() {
        let c = Interrupt::MachineTimer.cause();
        assert_eq!(c >> 63, 1);
        assert_eq!(c & 0xff, 7);
        assert_eq!(Interrupt::MachineTimer.pending_bit(), 1 << 7);
    }

    #[test]
    fn trap_mcause() {
        assert_eq!(Trap::Exception(Exception::IllegalInstr, 0xdead).mcause(), 2);
        assert_eq!(
            Trap::Exception(Exception::IllegalInstr, 0xdead).mtval(),
            0xdead
        );
        assert_eq!(Trap::Interrupt(Interrupt::MachineTimer).mtval(), 0);
    }
}
