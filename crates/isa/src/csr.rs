//! Control-and-status register map.
//!
//! The project tracks a fixed set of machine-mode, supervisor-lite and
//! "extension" CSRs. Rather than modelling the full 4096-entry CSR space the
//! architectural state keeps a dense array indexed by [`CsrIndex`]; the
//! mapping between RISC-V CSR addresses and dense indices lives here so that
//! the reference model, the DUT model and the verification events all agree.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of CSRs tracked in the dense architectural CSR file.
pub const CSR_COUNT: usize = 24;

macro_rules! csr_table {
    ($(($variant:ident, $addr:expr, $name:expr, $doc:expr)),* $(,)?) => {
        /// Dense index of a tracked CSR.
        ///
        /// The discriminants are contiguous in `0..CSR_COUNT` so the type can
        /// index the architectural CSR array directly.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum CsrIndex {
            $(#[doc = $doc] $variant),*
        }

        impl CsrIndex {
            /// All tracked CSRs in dense-index order.
            pub const ALL: [CsrIndex; CSR_COUNT] = [$(CsrIndex::$variant),*];

            /// The RISC-V CSR address of this register.
            pub const fn address(self) -> u16 {
                match self {
                    $(CsrIndex::$variant => $addr),*
                }
            }

            /// The assembler name of this register.
            pub const fn name(self) -> &'static str {
                match self {
                    $(CsrIndex::$variant => $name),*
                }
            }

            /// Looks up a tracked CSR by RISC-V address.
            pub fn from_address(addr: u16) -> Option<CsrIndex> {
                match addr {
                    $($addr => Some(CsrIndex::$variant),)*
                    _ => None,
                }
            }
        }
    };
}

csr_table! {
    (Mstatus,  0x300, "mstatus",  "Machine status."),
    (Misa,     0x301, "misa",     "ISA and extensions."),
    (Medeleg,  0x302, "medeleg",  "Machine exception delegation."),
    (Mideleg,  0x303, "mideleg",  "Machine interrupt delegation."),
    (Mie,      0x304, "mie",      "Machine interrupt enable."),
    (Mtvec,    0x305, "mtvec",    "Machine trap vector base."),
    (Mscratch, 0x340, "mscratch", "Machine scratch."),
    (Mepc,     0x341, "mepc",     "Machine exception PC."),
    (Mcause,   0x342, "mcause",   "Machine trap cause."),
    (Mtval,    0x343, "mtval",    "Machine trap value."),
    (Mip,      0x344, "mip",      "Machine interrupt pending."),
    (Mcycle,   0xb00, "mcycle",   "Machine cycle counter."),
    (Minstret, 0xb02, "minstret", "Machine instructions-retired counter."),
    (Mhartid,  0xf14, "mhartid",  "Hart ID."),
    (Satp,     0x180, "satp",     "Supervisor address translation and protection."),
    (Fcsr,     0x003, "fcsr",     "Floating-point control and status."),
    // Vector-extension state. The DUT does not execute V instructions but
    // models vector-unit bookkeeping through these CSRs, which is what the
    // vector verification events of the paper's Table 1 carry.
    (Vstart,   0x008, "vstart",   "Vector start index."),
    (Vxsat,    0x009, "vxsat",    "Vector fixed-point saturation flag."),
    (Vxrm,     0x00a, "vxrm",     "Vector fixed-point rounding mode."),
    (Vcsr,     0x00f, "vcsr",     "Vector control and status."),
    (Vl,       0xc20, "vl",       "Vector length."),
    (Vtype,    0xc21, "vtype",    "Vector data type."),
    // Hypervisor-extension bookkeeping (exercised by virtualization events).
    (Hstatus,  0x600, "hstatus",  "Hypervisor status."),
    (Hedeleg,  0x602, "hedeleg",  "Hypervisor exception delegation."),
}

impl CsrIndex {
    /// Returns the dense index in `0..CSR_COUNT`.
    #[inline]
    pub const fn dense(self) -> usize {
        self as usize
    }

    /// Looks up a tracked CSR by dense index.
    pub fn from_dense(index: usize) -> Option<CsrIndex> {
        Self::ALL.get(index).copied()
    }
}

impl fmt::Display for CsrIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Interesting bit positions inside `mstatus`.
pub mod mstatus {
    /// Machine-mode global interrupt enable.
    pub const MIE: u64 = 1 << 3;
    /// Previous machine-mode interrupt enable.
    pub const MPIE: u64 = 1 << 7;
    /// Previous privilege mode (two bits).
    pub const MPP_SHIFT: u32 = 11;
    /// Mask of the previous-privilege field.
    pub const MPP_MASK: u64 = 0b11 << MPP_SHIFT;
    /// Floating-point unit status field.
    pub const FS_SHIFT: u32 = 13;
    /// Mask of the FS field.
    pub const FS_MASK: u64 = 0b11 << FS_SHIFT;
    /// Vector unit status field.
    pub const VS_SHIFT: u32 = 9;
    /// Mask of the VS field.
    pub const VS_MASK: u64 = 0b11 << VS_SHIFT;
}

/// Interesting bit positions inside `mie`/`mip`.
pub mod mi {
    /// Machine software interrupt.
    pub const MSI: u64 = 1 << 3;
    /// Machine timer interrupt.
    pub const MTI: u64 = 1 << 7;
    /// Machine external interrupt.
    pub const MEI: u64 = 1 << 11;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_indices_are_contiguous() {
        for (i, csr) in CsrIndex::ALL.iter().enumerate() {
            assert_eq!(csr.dense(), i);
            assert_eq!(CsrIndex::from_dense(i), Some(*csr));
        }
        assert_eq!(CsrIndex::from_dense(CSR_COUNT), None);
    }

    #[test]
    fn address_round_trip() {
        for csr in CsrIndex::ALL {
            assert_eq!(CsrIndex::from_address(csr.address()), Some(csr));
        }
    }

    #[test]
    fn unknown_address() {
        assert_eq!(CsrIndex::from_address(0x7ff), None);
    }

    #[test]
    fn addresses_are_distinct() {
        let mut addrs: Vec<_> = CsrIndex::ALL.iter().map(|c| c.address()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), CSR_COUNT);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(CsrIndex::Mstatus.to_string(), "mstatus");
    }
}
