//! Disassembly used by `Display for Insn` and by debugging reports.

use std::fmt;

use crate::{Insn, Op};

fn mnemonic(op: Op) -> &'static str {
    use Op::*;
    match op {
        Lui => "lui",
        Auipc => "auipc",
        Jal => "jal",
        Jalr => "jalr",
        Beq => "beq",
        Bne => "bne",
        Blt => "blt",
        Bge => "bge",
        Bltu => "bltu",
        Bgeu => "bgeu",
        Lb => "lb",
        Lh => "lh",
        Lw => "lw",
        Ld => "ld",
        Lbu => "lbu",
        Lhu => "lhu",
        Lwu => "lwu",
        Sb => "sb",
        Sh => "sh",
        Sw => "sw",
        Sd => "sd",
        Addi => "addi",
        Slti => "slti",
        Sltiu => "sltiu",
        Xori => "xori",
        Ori => "ori",
        Andi => "andi",
        Slli => "slli",
        Srli => "srli",
        Srai => "srai",
        Addiw => "addiw",
        Slliw => "slliw",
        Srliw => "srliw",
        Sraiw => "sraiw",
        Add => "add",
        Sub => "sub",
        Sll => "sll",
        Slt => "slt",
        Sltu => "sltu",
        Xor => "xor",
        Srl => "srl",
        Sra => "sra",
        Or => "or",
        And => "and",
        Addw => "addw",
        Subw => "subw",
        Sllw => "sllw",
        Srlw => "srlw",
        Sraw => "sraw",
        Mul => "mul",
        Mulh => "mulh",
        Mulhsu => "mulhsu",
        Mulhu => "mulhu",
        Div => "div",
        Divu => "divu",
        Rem => "rem",
        Remu => "remu",
        Mulw => "mulw",
        Divw => "divw",
        Divuw => "divuw",
        Remw => "remw",
        Remuw => "remuw",
        LrW => "lr.w",
        ScW => "sc.w",
        LrD => "lr.d",
        ScD => "sc.d",
        AmoSwapW => "amoswap.w",
        AmoAddW => "amoadd.w",
        AmoXorW => "amoxor.w",
        AmoAndW => "amoand.w",
        AmoOrW => "amoor.w",
        AmoMinW => "amomin.w",
        AmoMaxW => "amomax.w",
        AmoMinuW => "amominu.w",
        AmoMaxuW => "amomaxu.w",
        AmoSwapD => "amoswap.d",
        AmoAddD => "amoadd.d",
        AmoXorD => "amoxor.d",
        AmoAndD => "amoand.d",
        AmoOrD => "amoor.d",
        AmoMinD => "amomin.d",
        AmoMaxD => "amomax.d",
        AmoMinuD => "amominu.d",
        AmoMaxuD => "amomaxu.d",
        Andn => "andn",
        Orn => "orn",
        Xnor => "xnor",
        Min => "min",
        Minu => "minu",
        Max => "max",
        Maxu => "maxu",
        Rol => "rol",
        Ror => "ror",
        Rori => "rori",
        Clz => "clz",
        Ctz => "ctz",
        Cpop => "cpop",
        SextB => "sext.b",
        SextH => "sext.h",
        ZextH => "zext.h",
        Rev8 => "rev8",
        OrcB => "orc.b",
        Fence => "fence",
        Ecall => "ecall",
        Ebreak => "ebreak",
        Mret => "mret",
        Wfi => "wfi",
        Csrrw => "csrrw",
        Csrrs => "csrrs",
        Csrrc => "csrrc",
        Csrrwi => "csrrwi",
        Csrrsi => "csrrsi",
        Csrrci => "csrrci",
        Fld => "fld",
        Fsd => "fsd",
        FmvDX => "fmv.d.x",
        FmvXD => "fmv.x.d",
        FaddD => "fadd.d",
        FsubD => "fsub.d",
        FmulD => "fmul.d",
        FdivD => "fdiv.d",
        Illegal => "illegal",
    }
}

pub(crate) fn fmt_insn(insn: &Insn, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    use Op::*;
    let m = mnemonic(insn.op);
    match insn.op {
        Lui | Auipc => write!(f, "{m} {}, {:#x}", insn.rd, (insn.imm as u64) >> 12),
        Jal => write!(f, "{m} {}, {}", insn.rd, insn.imm),
        Jalr => write!(f, "{m} {}, {}({})", insn.rd, insn.imm, insn.rs1),
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            write!(f, "{m} {}, {}, {}", insn.rs1, insn.rs2, insn.imm)
        }
        Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu => {
            write!(f, "{m} {}, {}({})", insn.rd, insn.imm, insn.rs1)
        }
        Fld => write!(f, "{m} {}, {}({})", insn.frd(), insn.imm, insn.rs1),
        Sb | Sh | Sw | Sd => write!(f, "{m} {}, {}({})", insn.rs2, insn.imm, insn.rs1),
        Fsd => write!(f, "{m} {}, {}({})", insn.frs2(), insn.imm, insn.rs1),
        Slli | Srli | Srai | Slliw | Srliw | Sraiw => {
            write!(f, "{m} {}, {}, {}", insn.rd, insn.rs1, insn.imm)
        }
        Addi | Slti | Sltiu | Xori | Ori | Andi | Addiw => {
            write!(f, "{m} {}, {}, {}", insn.rd, insn.rs1, insn.imm)
        }
        Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And | Addw | Subw | Sllw | Srlw
        | Sraw | Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu | Mulw | Divw | Divuw
        | Remw | Remuw => write!(f, "{m} {}, {}, {}", insn.rd, insn.rs1, insn.rs2),
        LrW | LrD => write!(f, "{m} {}, ({})", insn.rd, insn.rs1),
        ScW | ScD | AmoSwapW | AmoAddW | AmoXorW | AmoAndW | AmoOrW | AmoMinW | AmoMaxW
        | AmoMinuW | AmoMaxuW | AmoSwapD | AmoAddD | AmoXorD | AmoAndD | AmoOrD | AmoMinD
        | AmoMaxD | AmoMinuD | AmoMaxuD => {
            write!(f, "{m} {}, {}, ({})", insn.rd, insn.rs2, insn.rs1)
        }
        Andn | Orn | Xnor | Min | Minu | Max | Maxu | Rol | Ror => {
            write!(f, "{m} {}, {}, {}", insn.rd, insn.rs1, insn.rs2)
        }
        Rori => write!(f, "{m} {}, {}, {}", insn.rd, insn.rs1, insn.imm & 63),
        Clz | Ctz | Cpop | SextB | SextH | ZextH | Rev8 | OrcB => {
            write!(f, "{m} {}, {}", insn.rd, insn.rs1)
        }
        Fence | Ecall | Ebreak | Mret | Wfi => f.write_str(m),
        Csrrw | Csrrs | Csrrc => {
            write!(f, "{m} {}, {:#x}, {}", insn.rd, insn.csr, insn.rs1)
        }
        Csrrwi | Csrrsi | Csrrci => {
            write!(f, "{m} {}, {:#x}, {}", insn.rd, insn.csr, insn.zimm())
        }
        FmvDX => write!(f, "{m} {}, {}", insn.frd(), insn.rs1),
        FmvXD => write!(f, "{m} {}, {}", insn.rd, insn.frs1()),
        FaddD | FsubD | FmulD | FdivD => {
            write!(f, "{m} {}, {}, {}", insn.frd(), insn.frs1(), insn.frs2())
        }
        Illegal => write!(f, "{m} ({:#010x})", insn.raw),
    }
}

#[cfg(test)]
mod tests {
    use crate::{decode, encode, Reg};

    #[test]
    fn disasm_smoke() {
        assert_eq!(decode(encode::nop()).to_string(), "addi zero, zero, 0");
        assert_eq!(
            decode(encode::ld(Reg::A0, Reg::SP, 8)).to_string(),
            "ld a0, 8(sp)"
        );
        assert_eq!(
            decode(encode::beq(Reg::A0, Reg::A1, -8)).to_string(),
            "beq a0, a1, -8"
        );
        assert_eq!(decode(encode::ecall()).to_string(), "ecall");
        assert_eq!(decode(0).to_string(), "illegal (0x00000000)");
    }

    #[test]
    fn disasm_never_empty() {
        // C-DEBUG-NONEMPTY: every decodable word renders to something.
        for w in [0u32, 0x13, 0x73, 0xffff_ffff, encode::mret()] {
            assert!(!decode(w).to_string().is_empty());
        }
    }
}
