//! Decoder from raw 32-bit machine words to [`Insn`].

use crate::{Insn, Op, Reg};

#[inline]
fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

#[inline]
fn sext(value: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((value as i64) << shift) >> shift
}

fn imm_i(word: u32) -> i64 {
    sext(bits(word, 31, 20), 12)
}

fn imm_s(word: u32) -> i64 {
    sext((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)
}

fn imm_b(word: u32) -> i64 {
    let v = (bits(word, 31, 31) << 12)
        | (bits(word, 7, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1);
    sext(v, 13)
}

fn imm_u(word: u32) -> i64 {
    sext(word & 0xffff_f000, 32)
}

fn imm_j(word: u32) -> i64 {
    let v = (bits(word, 31, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bits(word, 20, 20) << 11)
        | (bits(word, 30, 21) << 1);
    sext(v, 21)
}

/// Decodes a raw 32-bit machine word.
///
/// Unrecognised encodings decode to [`Op::Illegal`]; executing such an
/// instruction raises an illegal-instruction exception, so the decoder never
/// fails.
///
/// # Examples
///
/// ```
/// use difftest_isa::{decode, Op};
/// assert_eq!(decode(0x0000_0013).op, Op::Addi); // canonical NOP
/// assert_eq!(decode(0xffff_ffff).op, Op::Illegal);
/// ```
pub fn decode(word: u32) -> Insn {
    let opcode = bits(word, 6, 0);
    let rd = Reg::new(bits(word, 11, 7) as u8);
    let rs1 = Reg::new(bits(word, 19, 15) as u8);
    let rs2 = Reg::new(bits(word, 24, 20) as u8);
    let funct3 = bits(word, 14, 12);
    let funct7 = bits(word, 31, 25);

    let mut insn = Insn {
        raw: word,
        op: Op::Illegal,
        rd,
        rs1,
        rs2,
        imm: 0,
        csr: 0,
    };

    match opcode {
        0x37 => {
            insn.op = Op::Lui;
            insn.imm = imm_u(word);
        }
        0x17 => {
            insn.op = Op::Auipc;
            insn.imm = imm_u(word);
        }
        0x6f => {
            insn.op = Op::Jal;
            insn.imm = imm_j(word);
        }
        0x67 if funct3 == 0 => {
            insn.op = Op::Jalr;
            insn.imm = imm_i(word);
        }
        0x63 => {
            insn.imm = imm_b(word);
            insn.op = match funct3 {
                0 => Op::Beq,
                1 => Op::Bne,
                4 => Op::Blt,
                5 => Op::Bge,
                6 => Op::Bltu,
                7 => Op::Bgeu,
                _ => Op::Illegal,
            };
        }
        0x03 => {
            insn.imm = imm_i(word);
            insn.op = match funct3 {
                0 => Op::Lb,
                1 => Op::Lh,
                2 => Op::Lw,
                3 => Op::Ld,
                4 => Op::Lbu,
                5 => Op::Lhu,
                6 => Op::Lwu,
                _ => Op::Illegal,
            };
        }
        0x23 => {
            insn.imm = imm_s(word);
            insn.op = match funct3 {
                0 => Op::Sb,
                1 => Op::Sh,
                2 => Op::Sw,
                3 => Op::Sd,
                _ => Op::Illegal,
            };
        }
        0x13 => {
            insn.imm = imm_i(word);
            let funct12 = bits(word, 31, 20);
            insn.op = match funct3 {
                0 => Op::Addi,
                2 => Op::Slti,
                3 => Op::Sltiu,
                4 => Op::Xori,
                6 => Op::Ori,
                7 => Op::Andi,
                // Zbb unary operations share the shift funct space.
                1 if funct12 == 0x600 => Op::Clz,
                1 if funct12 == 0x601 => Op::Ctz,
                1 if funct12 == 0x602 => Op::Cpop,
                1 if funct12 == 0x604 => Op::SextB,
                1 if funct12 == 0x605 => Op::SextH,
                5 if funct12 == 0x6b8 => Op::Rev8,
                5 if funct12 == 0x287 => Op::OrcB,
                1 if funct7 >> 1 == 0 => {
                    insn.imm = bits(word, 25, 20) as i64;
                    Op::Slli
                }
                5 if funct7 >> 1 == 0 => {
                    insn.imm = bits(word, 25, 20) as i64;
                    Op::Srli
                }
                5 if funct7 >> 1 == 0b010000 => {
                    insn.imm = bits(word, 25, 20) as i64;
                    Op::Srai
                }
                5 if funct7 >> 1 == 0b011000 => {
                    insn.imm = bits(word, 25, 20) as i64;
                    Op::Rori
                }
                _ => Op::Illegal,
            };
        }
        0x1b => {
            insn.imm = imm_i(word);
            insn.op = match funct3 {
                0 => Op::Addiw,
                1 if funct7 == 0 => {
                    insn.imm = bits(word, 24, 20) as i64;
                    Op::Slliw
                }
                5 if funct7 == 0 => {
                    insn.imm = bits(word, 24, 20) as i64;
                    Op::Srliw
                }
                5 if funct7 == 0b0100000 => {
                    insn.imm = bits(word, 24, 20) as i64;
                    Op::Sraiw
                }
                _ => Op::Illegal,
            };
        }
        0x33 => {
            insn.op = match (funct7, funct3) {
                // Zbb register-register.
                (0x20, 7) => Op::Andn,
                (0x20, 6) => Op::Orn,
                (0x20, 4) => Op::Xnor,
                (0x05, 4) => Op::Min,
                (0x05, 5) => Op::Minu,
                (0x05, 6) => Op::Max,
                (0x05, 7) => Op::Maxu,
                (0x30, 1) => Op::Rol,
                (0x30, 5) => Op::Ror,
                (0x00, 0) => Op::Add,
                (0x20, 0) => Op::Sub,
                (0x00, 1) => Op::Sll,
                (0x00, 2) => Op::Slt,
                (0x00, 3) => Op::Sltu,
                (0x00, 4) => Op::Xor,
                (0x00, 5) => Op::Srl,
                (0x20, 5) => Op::Sra,
                (0x00, 6) => Op::Or,
                (0x00, 7) => Op::And,
                (0x01, 0) => Op::Mul,
                (0x01, 1) => Op::Mulh,
                (0x01, 2) => Op::Mulhsu,
                (0x01, 3) => Op::Mulhu,
                (0x01, 4) => Op::Div,
                (0x01, 5) => Op::Divu,
                (0x01, 6) => Op::Rem,
                (0x01, 7) => Op::Remu,
                _ => Op::Illegal,
            };
        }
        0x3b => {
            insn.op = match (funct7, funct3) {
                (0x04, 4) if rs2.is_zero() => Op::ZextH,
                (0x00, 0) => Op::Addw,
                (0x20, 0) => Op::Subw,
                (0x00, 1) => Op::Sllw,
                (0x00, 5) => Op::Srlw,
                (0x20, 5) => Op::Sraw,
                (0x01, 0) => Op::Mulw,
                (0x01, 4) => Op::Divw,
                (0x01, 5) => Op::Divuw,
                (0x01, 6) => Op::Remw,
                (0x01, 7) => Op::Remuw,
                _ => Op::Illegal,
            };
        }
        0x2f => {
            let funct5 = funct7 >> 2;
            insn.op = match (funct5, funct3) {
                (0x02, 2) if rs2.is_zero() => Op::LrW,
                (0x03, 2) => Op::ScW,
                (0x02, 3) if rs2.is_zero() => Op::LrD,
                (0x03, 3) => Op::ScD,
                (0x01, 2) => Op::AmoSwapW,
                (0x00, 2) => Op::AmoAddW,
                (0x04, 2) => Op::AmoXorW,
                (0x0c, 2) => Op::AmoAndW,
                (0x08, 2) => Op::AmoOrW,
                (0x10, 2) => Op::AmoMinW,
                (0x14, 2) => Op::AmoMaxW,
                (0x18, 2) => Op::AmoMinuW,
                (0x1c, 2) => Op::AmoMaxuW,
                (0x01, 3) => Op::AmoSwapD,
                (0x00, 3) => Op::AmoAddD,
                (0x04, 3) => Op::AmoXorD,
                (0x0c, 3) => Op::AmoAndD,
                (0x08, 3) => Op::AmoOrD,
                (0x10, 3) => Op::AmoMinD,
                (0x14, 3) => Op::AmoMaxD,
                (0x18, 3) => Op::AmoMinuD,
                (0x1c, 3) => Op::AmoMaxuD,
                _ => Op::Illegal,
            };
        }
        0x0f => {
            insn.op = Op::Fence;
        }
        0x73 => match funct3 {
            0 => {
                insn.op = match bits(word, 31, 20) {
                    0x000 if rd.is_zero() && rs1.is_zero() => Op::Ecall,
                    0x001 if rd.is_zero() && rs1.is_zero() => Op::Ebreak,
                    0x302 if rd.is_zero() && rs1.is_zero() => Op::Mret,
                    0x105 if rd.is_zero() && rs1.is_zero() => Op::Wfi,
                    _ => Op::Illegal,
                };
            }
            1..=3 | 5..=7 => {
                insn.csr = bits(word, 31, 20) as u16;
                insn.op = match funct3 {
                    1 => Op::Csrrw,
                    2 => Op::Csrrs,
                    3 => Op::Csrrc,
                    5 => Op::Csrrwi,
                    6 => Op::Csrrsi,
                    7 => Op::Csrrci,
                    _ => unreachable!(),
                };
            }
            _ => {}
        },
        0x07 if funct3 == 3 => {
            insn.op = Op::Fld;
            insn.imm = imm_i(word);
        }
        0x27 if funct3 == 3 => {
            insn.op = Op::Fsd;
            insn.imm = imm_s(word);
        }
        0x53 => {
            insn.op = match funct7 {
                0b0000001 => Op::FaddD,
                0b0000101 => Op::FsubD,
                0b0001001 => Op::FmulD,
                0b0001101 => Op::FdivD,
                0b1111001 if rs2.is_zero() && funct3 == 0 => Op::FmvDX,
                0b1110001 if rs2.is_zero() && funct3 == 0 => Op::FmvXD,
                _ => Op::Illegal,
            };
        }
        _ => {}
    }

    insn
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_nop() {
        let i = decode(0x0000_0013);
        assert_eq!(i.op, Op::Addi);
        assert!(i.rd.is_zero());
        assert_eq!(i.imm, 0);
    }

    #[test]
    fn decode_negative_immediates() {
        // addi a0, a0, -1  => 0xfff50513
        let i = decode(0xfff5_0513);
        assert_eq!(i.op, Op::Addi);
        assert_eq!(i.imm, -1);
        // beq x0, x0, -4 has a negative B immediate.
        let word = crate::encode::beq(Reg::ZERO, Reg::ZERO, -4);
        assert_eq!(decode(word).imm, -4);
    }

    #[test]
    fn decode_system() {
        assert_eq!(decode(0x0000_0073).op, Op::Ecall);
        assert_eq!(decode(0x0010_0073).op, Op::Ebreak);
        assert_eq!(decode(0x3020_0073).op, Op::Mret);
        assert_eq!(decode(0x1050_0073).op, Op::Wfi);
    }

    #[test]
    fn decode_csr() {
        // csrrw a0, mscratch, a1 => 0x340595f3? Build via encoder instead.
        let w = crate::encode::csrrw(Reg::A0, 0x340, Reg::A1);
        let i = decode(w);
        assert_eq!(i.op, Op::Csrrw);
        assert_eq!(i.csr, 0x340);
        assert_eq!(i.rd, Reg::A0);
        assert_eq!(i.rs1, Reg::A1);
    }

    #[test]
    fn decode_illegal() {
        assert_eq!(decode(0x0000_0000).op, Op::Illegal);
        assert_eq!(decode(0xffff_ffff).op, Op::Illegal);
    }

    #[test]
    fn decode_shamt_rv64() {
        // slli a0, a0, 63
        let w = crate::encode::slli(Reg::A0, Reg::A0, 63);
        let i = decode(w);
        assert_eq!(i.op, Op::Slli);
        assert_eq!(i.imm, 63);
    }

    #[test]
    fn decode_amo() {
        let w = crate::encode::amoadd_w(Reg::A0, Reg::A1, Reg::A2);
        let i = decode(w);
        assert_eq!(i.op, Op::AmoAddW);
        assert_eq!(i.rd, Reg::A0);
        assert_eq!(i.rs1, Reg::A1);
        assert_eq!(i.rs2, Reg::A2);
    }
}
