//! RV64 instruction-set definitions shared by the reference model, the DUT
//! model and the workload generators.
//!
//! The crate provides:
//!
//! - [`Reg`]: integer register identifiers with ABI names,
//! - [`FReg`]: floating-point register identifiers,
//! - [`Op`] / [`Insn`]: decoded instruction representation,
//! - [`decode`]: a decoder from raw 32-bit machine words,
//! - [`encode`]: an assembler producing raw machine words (used by the
//!   workload generators and for round-trip testing),
//! - [`csr`]: the control-and-status register map used across the project,
//! - [`trap`]: exception and interrupt cause codes.
//!
//! The supported subset is RV64IM + Zicsr + `ecall`/`ebreak`/`mret`/`wfi` +
//! a small slice of D-extension moves and arithmetic (enough to exercise the
//! floating-point verification events of the co-simulation framework).
//!
//! # Examples
//!
//! ```
//! use difftest_isa::{decode, encode, Op, Reg};
//!
//! let word = encode::addi(Reg::A0, Reg::ZERO, 42);
//! let insn = decode(word);
//! assert_eq!(insn.op, Op::Addi);
//! assert_eq!(insn.rd, Reg::A0);
//! assert_eq!(insn.imm, 42);
//! ```

#![warn(missing_docs)]

pub mod csr;
mod decode;
mod disasm;
pub mod encode;
mod insn;
mod reg;
pub mod trap;

pub use decode::decode;
pub use insn::{Insn, Op};
pub use reg::{FReg, Reg};
