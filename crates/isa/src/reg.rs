//! Integer and floating-point register identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An integer (x) register index in `0..32`.
///
/// The type statically guarantees a valid index: constructing a `Reg` from an
/// out-of-range value is only possible through [`Reg::new`], which masks to
/// five bits, or through the named constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from a raw index, keeping only the low five bits.
    #[inline]
    pub const fn new(index: u8) -> Self {
        Reg(index & 0x1f)
    }

    /// Returns the raw register index in `0..32`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for `x0`, the hard-wired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// ABI name of the register, e.g. `"a0"` for `x10`.
    pub const fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 integer registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..32).map(Reg::new)
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

macro_rules! reg_consts {
    ($($name:ident = $idx:expr),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("The `", stringify!($name), "` register.")]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

reg_consts! {
    ZERO = 0, RA = 1, SP = 2, GP = 3, TP = 4,
    T0 = 5, T1 = 6, T2 = 7,
    S0 = 8, S1 = 9,
    A0 = 10, A1 = 11, A2 = 12, A3 = 13, A4 = 14, A5 = 15, A6 = 16, A7 = 17,
    S2 = 18, S3 = 19, S4 = 20, S5 = 21, S6 = 22, S7 = 23, S8 = 24, S9 = 25,
    S10 = 26, S11 = 27,
    T3 = 28, T4 = 29, T5 = 30, T6 = 31,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

/// A floating-point (f) register index in `0..32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FReg(u8);

impl FReg {
    /// Creates a floating-point register from a raw index (masked to 5 bits).
    #[inline]
    pub const fn new(index: u8) -> Self {
        FReg(index & 0x1f)
    }

    /// Returns the raw register index in `0..32`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all 32 floating-point registers in index order.
    pub fn all() -> impl Iterator<Item = FReg> {
        (0u8..32).map(FReg::new)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<FReg> for usize {
    fn from(r: FReg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_to_five_bits() {
        assert_eq!(Reg::new(33), Reg::new(1));
        assert_eq!(FReg::new(0xff).index(), 31);
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::A0.is_zero());
    }

    #[test]
    fn abi_names_are_distinct() {
        let mut names: Vec<_> = Reg::all().map(Reg::abi_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn display_matches_abi() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(FReg::new(3).to_string(), "f3");
    }

    #[test]
    fn all_yields_32() {
        assert_eq!(Reg::all().count(), 32);
        assert_eq!(FReg::all().count(), 32);
    }
}
