//! Decoded instruction representation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{FReg, Reg};

/// The operation performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Op {
    // RV64I: upper immediates and jumps.
    Lui,
    Auipc,
    Jal,
    Jalr,
    // Conditional branches.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    // Loads.
    Lb,
    Lh,
    Lw,
    Ld,
    Lbu,
    Lhu,
    Lwu,
    // Stores.
    Sb,
    Sh,
    Sw,
    Sd,
    // Integer register-immediate.
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
    // Integer register-register.
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    // RV64M.
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
    // RV64A.
    LrW,
    ScW,
    LrD,
    ScD,
    AmoSwapW,
    AmoAddW,
    AmoXorW,
    AmoAndW,
    AmoOrW,
    AmoMinW,
    AmoMaxW,
    AmoMinuW,
    AmoMaxuW,
    AmoSwapD,
    AmoAddD,
    AmoXorD,
    AmoAndD,
    AmoOrD,
    AmoMinD,
    AmoMaxD,
    AmoMinuD,
    AmoMaxuD,
    // Zbb (basic bit manipulation; the B-extension subset XiangShan ships).
    Andn,
    Orn,
    Xnor,
    Min,
    Minu,
    Max,
    Maxu,
    Rol,
    Ror,
    Rori,
    Clz,
    Ctz,
    Cpop,
    SextB,
    SextH,
    ZextH,
    Rev8,
    OrcB,
    // System.
    Fence,
    Ecall,
    Ebreak,
    Mret,
    Wfi,
    // Zicsr.
    Csrrw,
    Csrrs,
    Csrrc,
    Csrrwi,
    Csrrsi,
    Csrrci,
    // D-extension slice: loads/stores, moves, basic arithmetic.
    Fld,
    Fsd,
    FmvDX,
    FmvXD,
    FaddD,
    FsubD,
    FmulD,
    FdivD,
    /// Anything the decoder does not recognise.
    Illegal,
}

impl Op {
    /// Returns `true` if the instruction is a conditional branch.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu
        )
    }

    /// Returns `true` if the instruction reads memory (loads, LR, AMOs).
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Op::Lb
                | Op::Lh
                | Op::Lw
                | Op::Ld
                | Op::Lbu
                | Op::Lhu
                | Op::Lwu
                | Op::Fld
                | Op::LrW
                | Op::LrD
        ) || self.is_amo()
    }

    /// Returns `true` if the instruction writes memory (stores, SC, AMOs).
    pub fn is_store(self) -> bool {
        matches!(
            self,
            Op::Sb | Op::Sh | Op::Sw | Op::Sd | Op::Fsd | Op::ScW | Op::ScD
        ) || self.is_amo()
    }

    /// Returns `true` for read-modify-write AMOs (not LR/SC).
    pub fn is_amo(self) -> bool {
        matches!(
            self,
            Op::AmoSwapW
                | Op::AmoAddW
                | Op::AmoXorW
                | Op::AmoAndW
                | Op::AmoOrW
                | Op::AmoMinW
                | Op::AmoMaxW
                | Op::AmoMinuW
                | Op::AmoMaxuW
                | Op::AmoSwapD
                | Op::AmoAddD
                | Op::AmoXorD
                | Op::AmoAndD
                | Op::AmoOrD
                | Op::AmoMinD
                | Op::AmoMaxD
                | Op::AmoMinuD
                | Op::AmoMaxuD
        )
    }

    /// Returns `true` for atomic memory operations (LR/SC/AMO).
    pub fn is_atomic(self) -> bool {
        matches!(self, Op::LrW | Op::ScW | Op::LrD | Op::ScD) || self.is_amo()
    }

    /// Returns `true` for Zicsr operations.
    pub fn is_csr(self) -> bool {
        matches!(
            self,
            Op::Csrrw | Op::Csrrs | Op::Csrrc | Op::Csrrwi | Op::Csrrsi | Op::Csrrci
        )
    }

    /// Returns `true` if the instruction may redirect control flow.
    pub fn is_control_flow(self) -> bool {
        self.is_branch() || matches!(self, Op::Jal | Op::Jalr | Op::Mret | Op::Ecall | Op::Ebreak)
    }

    /// Returns `true` if the op terminates a basic block for trace caching:
    /// anything that can redirect control flow (including trapping ops),
    /// CSR accesses and `wfi` (system-state interaction is kept out of
    /// straight-line replay), `fence` (it flushes the trace cache itself),
    /// and undecodable words.
    pub fn ends_block(self) -> bool {
        self.is_control_flow() || self.is_csr() || matches!(self, Op::Fence | Op::Wfi | Op::Illegal)
    }

    /// Returns `true` for the floating-point slice.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            Op::Fld
                | Op::Fsd
                | Op::FmvDX
                | Op::FmvXD
                | Op::FaddD
                | Op::FsubD
                | Op::FmulD
                | Op::FdivD
        )
    }

    /// Returns `true` if the op writes an integer destination register.
    pub fn writes_int_rd(self) -> bool {
        !(self.is_branch()
            || matches!(
                self,
                Op::Sb
                    | Op::Sh
                    | Op::Sw
                    | Op::Sd
                    | Op::Fsd
                    | Op::Fence
                    | Op::Ecall
                    | Op::Ebreak
                    | Op::Mret
                    | Op::Wfi
                    | Op::Fld
                    | Op::FmvDX
                    | Op::FaddD
                    | Op::FsubD
                    | Op::FmulD
                    | Op::FdivD
                    | Op::Illegal
            ))
    }

    /// Returns `true` if the op writes a floating-point destination register.
    pub fn writes_fp_rd(self) -> bool {
        matches!(
            self,
            Op::Fld | Op::FmvDX | Op::FaddD | Op::FsubD | Op::FmulD | Op::FdivD
        )
    }
}

/// A fully decoded instruction.
///
/// Operand fields that an operation does not use are left at their decoded
/// bit-field values and are ignored by the executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Insn {
    /// The raw 32-bit machine word.
    pub raw: u32,
    /// The decoded operation.
    pub op: Op,
    /// Destination register.
    pub rd: Reg,
    /// First source register (also the `zimm` field of `csrr*i`).
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Sign-extended immediate (branch/jump offsets, load/store offsets, ...).
    pub imm: i64,
    /// CSR address for Zicsr operations, zero otherwise.
    pub csr: u16,
}

impl Insn {
    /// The floating-point view of the destination register field.
    #[inline]
    pub fn frd(&self) -> FReg {
        FReg::new(self.rd.index() as u8)
    }

    /// The floating-point view of the first source register field.
    #[inline]
    pub fn frs1(&self) -> FReg {
        FReg::new(self.rs1.index() as u8)
    }

    /// The floating-point view of the second source register field.
    #[inline]
    pub fn frs2(&self) -> FReg {
        FReg::new(self.rs2.index() as u8)
    }

    /// The `zimm` immediate of `csrr*i` instructions (held in the rs1 field).
    #[inline]
    pub fn zimm(&self) -> u64 {
        self.rs1.index() as u64
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::disasm::fmt_insn(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifiers_are_consistent() {
        assert!(Op::Beq.is_branch());
        assert!(Op::Beq.is_control_flow());
        assert!(!Op::Beq.writes_int_rd());
        assert!(Op::Ld.is_load());
        assert!(!Op::Ld.is_store());
        assert!(Op::Sd.is_store());
        assert!(Op::AmoAddW.is_load() && Op::AmoAddW.is_store() && Op::AmoAddW.is_atomic());
        assert!(Op::Csrrw.is_csr());
        assert!(Op::Fld.is_fp() && Op::Fld.writes_fp_rd() && !Op::Fld.writes_int_rd());
        assert!(Op::FmvXD.writes_int_rd() && !Op::FmvXD.writes_fp_rd());
        assert!(!Op::Illegal.writes_int_rd());
    }
}
