//! Instruction encoders (a tiny assembler).
//!
//! Each function produces the raw 32-bit machine word for one instruction.
//! The workload generators build programs from these, and the decoder tests
//! round-trip through them.
//!
//! # Panics
//!
//! Encoders panic (via `debug_assert!`) when an immediate does not fit its
//! field in debug builds; release builds silently truncate, mirroring what an
//! assembler's output would contain.

use crate::{FReg, Reg};

#[inline]
fn r_type(opcode: u32, rd: Reg, funct3: u32, rs1: Reg, rs2: Reg, funct7: u32) -> u32 {
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (funct7 << 25)
}

#[inline]
fn i_type(opcode: u32, rd: Reg, funct3: u32, rs1: Reg, imm: i64) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "I-immediate out of range: {imm}"
    );
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | (((imm as u32) & 0xfff) << 20)
}

#[inline]
fn s_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i64) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "S-immediate out of range: {imm}"
    );
    let imm = imm as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

#[inline]
fn b_type(funct3: u32, rs1: Reg, rs2: Reg, imm: i64) -> u32 {
    debug_assert!(
        (-4096..=4095).contains(&imm) && imm % 2 == 0,
        "B-immediate out of range or misaligned: {imm}"
    );
    let imm = imm as u32;
    0x63 | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

#[inline]
fn u_type(opcode: u32, rd: Reg, imm: i64) -> u32 {
    opcode | ((rd.index() as u32) << 7) | ((imm as u32) & 0xffff_f000)
}

#[inline]
fn j_type(rd: Reg, imm: i64) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J-immediate out of range or misaligned: {imm}"
    );
    let imm = imm as u32;
    0x6f | ((rd.index() as u32) << 7)
        | (imm & 0xff000)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

macro_rules! i_ops {
    ($(($fn:ident, $opcode:expr, $funct3:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(rd: Reg, rs1: Reg, imm: i64) -> u32 {
                i_type($opcode, rd, $funct3, rs1, imm)
            }
        )*
    };
}

i_ops! {
    (addi,  0x13, 0, "`addi rd, rs1, imm`"),
    (slti,  0x13, 2, "`slti rd, rs1, imm`"),
    (sltiu, 0x13, 3, "`sltiu rd, rs1, imm`"),
    (xori,  0x13, 4, "`xori rd, rs1, imm`"),
    (ori,   0x13, 6, "`ori rd, rs1, imm`"),
    (andi,  0x13, 7, "`andi rd, rs1, imm`"),
    (addiw, 0x1b, 0, "`addiw rd, rs1, imm`"),
    (jalr,  0x67, 0, "`jalr rd, imm(rs1)`"),
    (lb,    0x03, 0, "`lb rd, imm(rs1)`"),
    (lh,    0x03, 1, "`lh rd, imm(rs1)`"),
    (lw,    0x03, 2, "`lw rd, imm(rs1)`"),
    (ld,    0x03, 3, "`ld rd, imm(rs1)`"),
    (lbu,   0x03, 4, "`lbu rd, imm(rs1)`"),
    (lhu,   0x03, 5, "`lhu rd, imm(rs1)`"),
    (lwu,   0x03, 6, "`lwu rd, imm(rs1)`"),
}

macro_rules! shift_ops {
    ($(($fn:ident, $opcode:expr, $funct3:expr, $hi:expr, $max:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(rd: Reg, rs1: Reg, shamt: u32) -> u32 {
                debug_assert!(shamt <= $max, "shift amount out of range: {shamt}");
                i_type($opcode, rd, $funct3, rs1, (shamt | $hi) as i64)
            }
        )*
    };
}

shift_ops! {
    (slli,  0x13, 1, 0,     63, "`slli rd, rs1, shamt` (RV64, 6-bit shamt)"),
    (srli,  0x13, 5, 0,     63, "`srli rd, rs1, shamt`"),
    (srai,  0x13, 5, 0x400, 63, "`srai rd, rs1, shamt`"),
    (slliw, 0x1b, 1, 0,     31, "`slliw rd, rs1, shamt`"),
    (srliw, 0x1b, 5, 0,     31, "`srliw rd, rs1, shamt`"),
    (sraiw, 0x1b, 5, 0x400, 31, "`sraiw rd, rs1, shamt`"),
}

macro_rules! r_ops {
    ($(($fn:ident, $opcode:expr, $funct3:expr, $funct7:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
                r_type($opcode, rd, $funct3, rs1, rs2, $funct7)
            }
        )*
    };
}

r_ops! {
    (add,    0x33, 0, 0x00, "`add rd, rs1, rs2`"),
    (sub,    0x33, 0, 0x20, "`sub rd, rs1, rs2`"),
    (sll,    0x33, 1, 0x00, "`sll rd, rs1, rs2`"),
    (slt,    0x33, 2, 0x00, "`slt rd, rs1, rs2`"),
    (sltu,   0x33, 3, 0x00, "`sltu rd, rs1, rs2`"),
    (xor,    0x33, 4, 0x00, "`xor rd, rs1, rs2`"),
    (srl,    0x33, 5, 0x00, "`srl rd, rs1, rs2`"),
    (sra,    0x33, 5, 0x20, "`sra rd, rs1, rs2`"),
    (or,     0x33, 6, 0x00, "`or rd, rs1, rs2`"),
    (and,    0x33, 7, 0x00, "`and rd, rs1, rs2`"),
    (addw,   0x3b, 0, 0x00, "`addw rd, rs1, rs2`"),
    (subw,   0x3b, 0, 0x20, "`subw rd, rs1, rs2`"),
    (sllw,   0x3b, 1, 0x00, "`sllw rd, rs1, rs2`"),
    (srlw,   0x3b, 5, 0x00, "`srlw rd, rs1, rs2`"),
    (sraw,   0x3b, 5, 0x20, "`sraw rd, rs1, rs2`"),
    (mul,    0x33, 0, 0x01, "`mul rd, rs1, rs2`"),
    (mulh,   0x33, 1, 0x01, "`mulh rd, rs1, rs2`"),
    (mulhsu, 0x33, 2, 0x01, "`mulhsu rd, rs1, rs2`"),
    (mulhu,  0x33, 3, 0x01, "`mulhu rd, rs1, rs2`"),
    (div,    0x33, 4, 0x01, "`div rd, rs1, rs2`"),
    (divu,   0x33, 5, 0x01, "`divu rd, rs1, rs2`"),
    (rem,    0x33, 6, 0x01, "`rem rd, rs1, rs2`"),
    (remu,   0x33, 7, 0x01, "`remu rd, rs1, rs2`"),
    (mulw,   0x3b, 0, 0x01, "`mulw rd, rs1, rs2`"),
    (divw,   0x3b, 4, 0x01, "`divw rd, rs1, rs2`"),
    (divuw,  0x3b, 5, 0x01, "`divuw rd, rs1, rs2`"),
    (remw,   0x3b, 6, 0x01, "`remw rd, rs1, rs2`"),
    (remuw,  0x3b, 7, 0x01, "`remuw rd, rs1, rs2`"),
}

macro_rules! b_ops {
    ($(($fn:ident, $funct3:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(rs1: Reg, rs2: Reg, offset: i64) -> u32 {
                b_type($funct3, rs1, rs2, offset)
            }
        )*
    };
}

b_ops! {
    (beq,  0, "`beq rs1, rs2, offset`"),
    (bne,  1, "`bne rs1, rs2, offset`"),
    (blt,  4, "`blt rs1, rs2, offset`"),
    (bge,  5, "`bge rs1, rs2, offset`"),
    (bltu, 6, "`bltu rs1, rs2, offset`"),
    (bgeu, 7, "`bgeu rs1, rs2, offset`"),
}

macro_rules! s_ops {
    ($(($fn:ident, $opcode:expr, $funct3:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(rs2: Reg, rs1: Reg, imm: i64) -> u32 {
                s_type($opcode, $funct3, rs1, rs2, imm)
            }
        )*
    };
}

s_ops! {
    (sb, 0x23, 0, "`sb rs2, imm(rs1)`"),
    (sh, 0x23, 1, "`sh rs2, imm(rs1)`"),
    (sw, 0x23, 2, "`sw rs2, imm(rs1)`"),
    (sd, 0x23, 3, "`sd rs2, imm(rs1)`"),
}

/// `lui rd, imm` — `imm` is the full 32-bit value whose low 12 bits are zero.
pub fn lui(rd: Reg, imm: i64) -> u32 {
    u_type(0x37, rd, imm)
}

/// `auipc rd, imm` — `imm` is the full 32-bit value whose low 12 bits are zero.
pub fn auipc(rd: Reg, imm: i64) -> u32 {
    u_type(0x17, rd, imm)
}

/// `jal rd, offset`.
pub fn jal(rd: Reg, offset: i64) -> u32 {
    j_type(rd, offset)
}

/// `fence` (treated as a no-op by the executors).
pub fn fence() -> u32 {
    0x0000_000f
}

/// `ecall`.
pub fn ecall() -> u32 {
    0x0000_0073
}

/// `ebreak`.
pub fn ebreak() -> u32 {
    0x0010_0073
}

/// `mret`.
pub fn mret() -> u32 {
    0x3020_0073
}

/// `wfi`.
pub fn wfi() -> u32 {
    0x1050_0073
}

/// The canonical NOP (`addi x0, x0, 0`).
pub fn nop() -> u32 {
    addi(Reg::ZERO, Reg::ZERO, 0)
}

macro_rules! csr_ops {
    ($(($fn:ident, $funct3:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(rd: Reg, csr: u16, rs1: Reg) -> u32 {
                0x73 | ((rd.index() as u32) << 7)
                    | ($funct3 << 12)
                    | ((rs1.index() as u32) << 15)
                    | ((csr as u32) << 20)
            }
        )*
    };
}

csr_ops! {
    (csrrw, 1, "`csrrw rd, csr, rs1`"),
    (csrrs, 2, "`csrrs rd, csr, rs1`"),
    (csrrc, 3, "`csrrc rd, csr, rs1`"),
}

macro_rules! csri_ops {
    ($(($fn:ident, $funct3:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(rd: Reg, csr: u16, zimm: u8) -> u32 {
                debug_assert!(zimm < 32, "zimm out of range: {zimm}");
                0x73 | ((rd.index() as u32) << 7)
                    | ($funct3 << 12)
                    | (((zimm & 0x1f) as u32) << 15)
                    | ((csr as u32) << 20)
            }
        )*
    };
}

csri_ops! {
    (csrrwi, 5, "`csrrwi rd, csr, zimm`"),
    (csrrsi, 6, "`csrrsi rd, csr, zimm`"),
    (csrrci, 7, "`csrrci rd, csr, zimm`"),
}

macro_rules! amo_ops {
    ($(($fn:ident, $funct5:expr, $funct3:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
                r_type(0x2f, rd, $funct3, rs1, rs2, $funct5 << 2)
            }
        )*
    };
}

amo_ops! {
    (sc_w,      0x03, 2, "`sc.w rd, rs2, (rs1)`"),
    (sc_d,      0x03, 3, "`sc.d rd, rs2, (rs1)`"),
    (amoswap_w, 0x01, 2, "`amoswap.w rd, rs2, (rs1)`"),
    (amoadd_w,  0x00, 2, "`amoadd.w rd, rs2, (rs1)`"),
    (amoxor_w,  0x04, 2, "`amoxor.w rd, rs2, (rs1)`"),
    (amoand_w,  0x0c, 2, "`amoand.w rd, rs2, (rs1)`"),
    (amoor_w,   0x08, 2, "`amoor.w rd, rs2, (rs1)`"),
    (amomin_w,  0x10, 2, "`amomin.w rd, rs2, (rs1)`"),
    (amomax_w,  0x14, 2, "`amomax.w rd, rs2, (rs1)`"),
    (amominu_w, 0x18, 2, "`amominu.w rd, rs2, (rs1)`"),
    (amomaxu_w, 0x1c, 2, "`amomaxu.w rd, rs2, (rs1)`"),
    (amoswap_d, 0x01, 3, "`amoswap.d rd, rs2, (rs1)`"),
    (amoadd_d,  0x00, 3, "`amoadd.d rd, rs2, (rs1)`"),
    (amoxor_d,  0x04, 3, "`amoxor.d rd, rs2, (rs1)`"),
    (amoand_d,  0x0c, 3, "`amoand.d rd, rs2, (rs1)`"),
    (amoor_d,   0x08, 3, "`amoor.d rd, rs2, (rs1)`"),
    (amomin_d,  0x10, 3, "`amomin.d rd, rs2, (rs1)`"),
    (amomax_d,  0x14, 3, "`amomax.d rd, rs2, (rs1)`"),
    (amominu_d, 0x18, 3, "`amominu.d rd, rs2, (rs1)`"),
    (amomaxu_d, 0x1c, 3, "`amomaxu.d rd, rs2, (rs1)`"),
}

r_ops! {
    (andn, 0x33, 7, 0x20, "`andn rd, rs1, rs2` (Zbb)"),
    (orn,  0x33, 6, 0x20, "`orn rd, rs1, rs2` (Zbb)"),
    (xnor, 0x33, 4, 0x20, "`xnor rd, rs1, rs2` (Zbb)"),
    (min,  0x33, 4, 0x05, "`min rd, rs1, rs2` (Zbb)"),
    (minu, 0x33, 5, 0x05, "`minu rd, rs1, rs2` (Zbb)"),
    (max,  0x33, 6, 0x05, "`max rd, rs1, rs2` (Zbb)"),
    (maxu, 0x33, 7, 0x05, "`maxu rd, rs1, rs2` (Zbb)"),
    (rol,  0x33, 1, 0x30, "`rol rd, rs1, rs2` (Zbb)"),
    (ror,  0x33, 5, 0x30, "`ror rd, rs1, rs2` (Zbb)"),
}

macro_rules! zbb_unary {
    ($(($fn:ident, $funct12:expr, $funct3:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(rd: Reg, rs1: Reg) -> u32 {
                0x13 | ((rd.index() as u32) << 7)
                    | ($funct3 << 12)
                    | ((rs1.index() as u32) << 15)
                    | ($funct12 << 20)
            }
        )*
    };
}

zbb_unary! {
    (clz,    0x600, 1, "`clz rd, rs1` (Zbb)"),
    (ctz,    0x601, 1, "`ctz rd, rs1` (Zbb)"),
    (cpop,   0x602, 1, "`cpop rd, rs1` (Zbb)"),
    (sext_b, 0x604, 1, "`sext.b rd, rs1` (Zbb)"),
    (sext_h, 0x605, 1, "`sext.h rd, rs1` (Zbb)"),
    (rev8,   0x6b8, 5, "`rev8 rd, rs1` (Zbb, RV64)"),
    (orc_b,  0x287, 5, "`orc.b rd, rs1` (Zbb)"),
}

/// `rori rd, rs1, shamt` (Zbb, RV64 6-bit shamt).
pub fn rori(rd: Reg, rs1: Reg, shamt: u32) -> u32 {
    debug_assert!(shamt <= 63, "shift amount out of range: {shamt}");
    i_type(0x13, rd, 5, rs1, (shamt | 0x600) as i64)
}

/// `zext.h rd, rs1` (Zbb, RV64 encoding).
pub fn zext_h(rd: Reg, rs1: Reg) -> u32 {
    r_type(0x3b, rd, 4, rs1, Reg::ZERO, 0x04)
}

/// `lr.w rd, (rs1)`.
pub fn lr_w(rd: Reg, rs1: Reg) -> u32 {
    r_type(0x2f, rd, 2, rs1, Reg::ZERO, 0x02 << 2)
}

/// `lr.d rd, (rs1)`.
pub fn lr_d(rd: Reg, rs1: Reg) -> u32 {
    r_type(0x2f, rd, 3, rs1, Reg::ZERO, 0x02 << 2)
}

/// `fld frd, imm(rs1)`.
pub fn fld(frd: FReg, rs1: Reg, imm: i64) -> u32 {
    i_type(0x07, Reg::new(frd.index() as u8), 3, rs1, imm)
}

/// `fsd frs2, imm(rs1)`.
pub fn fsd(frs2: FReg, rs1: Reg, imm: i64) -> u32 {
    s_type(0x27, 3, rs1, Reg::new(frs2.index() as u8), imm)
}

/// `fmv.d.x frd, rs1` — move integer bits into a floating-point register.
pub fn fmv_d_x(frd: FReg, rs1: Reg) -> u32 {
    r_type(
        0x53,
        Reg::new(frd.index() as u8),
        0,
        rs1,
        Reg::ZERO,
        0b1111001,
    )
}

/// `fmv.x.d rd, frs1` — move floating-point bits into an integer register.
pub fn fmv_x_d(rd: Reg, frs1: FReg) -> u32 {
    r_type(
        0x53,
        rd,
        0,
        Reg::new(frs1.index() as u8),
        Reg::ZERO,
        0b1110001,
    )
}

macro_rules! fp_r_ops {
    ($(($fn:ident, $funct7:expr, $doc:expr)),* $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $fn(frd: FReg, frs1: FReg, frs2: FReg) -> u32 {
                // funct3 = 0b000 selects RNE rounding; both executors use
                // Rust's f64 arithmetic which rounds to nearest-even.
                r_type(
                    0x53,
                    Reg::new(frd.index() as u8),
                    0,
                    Reg::new(frs1.index() as u8),
                    Reg::new(frs2.index() as u8),
                    $funct7,
                )
            }
        )*
    };
}

fp_r_ops! {
    (fadd_d, 0b0000001, "`fadd.d frd, frs1, frs2`"),
    (fsub_d, 0b0000101, "`fsub.d frd, frs1, frs2`"),
    (fmul_d, 0b0001001, "`fmul.d frd, frs1, frs2`"),
    (fdiv_d, 0b0001101, "`fdiv.d frd, frs1, frs2`"),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, Op};

    #[test]
    fn nop_is_canonical() {
        assert_eq!(nop(), 0x0000_0013);
    }

    #[test]
    fn round_trip_arith() {
        let w = add(Reg::A0, Reg::A1, Reg::A2);
        let i = decode(w);
        assert_eq!(
            (i.op, i.rd, i.rs1, i.rs2),
            (Op::Add, Reg::A0, Reg::A1, Reg::A2)
        );
    }

    #[test]
    fn round_trip_branch_negative() {
        let w = bne(Reg::T0, Reg::T1, -256);
        let i = decode(w);
        assert_eq!(i.op, Op::Bne);
        assert_eq!(i.imm, -256);
    }

    #[test]
    fn round_trip_jal() {
        for off in [-1048576i64, -4, 0, 2, 4096, 1048574] {
            let i = decode(jal(Reg::RA, off));
            assert_eq!(i.op, Op::Jal, "offset {off}");
            assert_eq!(i.imm, off, "offset {off}");
        }
    }

    #[test]
    fn round_trip_store() {
        let i = decode(sd(Reg::A0, Reg::SP, -16));
        assert_eq!(i.op, Op::Sd);
        assert_eq!(i.rs1, Reg::SP);
        assert_eq!(i.rs2, Reg::A0);
        assert_eq!(i.imm, -16);
    }

    #[test]
    fn round_trip_lui() {
        let i = decode(lui(Reg::A0, 0x8000_0000u32 as i64));
        assert_eq!(i.op, Op::Lui);
        // imm_u sign-extends bit 31.
        assert_eq!(i.imm as i32, i32::MIN);
    }

    #[test]
    fn round_trip_csri() {
        let i = decode(csrrwi(Reg::ZERO, 0x305, 7));
        assert_eq!(i.op, Op::Csrrwi);
        assert_eq!(i.csr, 0x305);
        assert_eq!(i.zimm(), 7);
    }

    #[test]
    fn round_trip_fp() {
        let i = decode(fadd_d(FReg::new(1), FReg::new(2), FReg::new(3)));
        assert_eq!(i.op, Op::FaddD);
        assert_eq!(i.frd().index(), 1);
        assert_eq!(i.frs1().index(), 2);
        assert_eq!(i.frs2().index(), 3);
    }

    #[test]
    fn round_trip_lr_sc() {
        assert_eq!(decode(lr_d(Reg::A0, Reg::A1)).op, Op::LrD);
        let i = decode(sc_d(Reg::A0, Reg::A1, Reg::A2));
        assert_eq!(i.op, Op::ScD);
    }
}
