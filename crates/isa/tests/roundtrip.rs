//! Property tests: the encoder and decoder are mutual inverses on the
//! supported subset, and the decoder never panics on arbitrary words.

use difftest_isa::{decode, encode, Op, Reg};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

proptest! {
    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let insn = decode(word);
        // Display must never panic or be empty either (C-DEBUG-NONEMPTY).
        prop_assert!(!insn.to_string().is_empty());
    }

    #[test]
    fn rtype_round_trip(rd in any_reg(), rs1 in any_reg(), rs2 in any_reg()) {
        for (f, op) in [
            (encode::add as fn(Reg, Reg, Reg) -> u32, Op::Add),
            (encode::sub, Op::Sub),
            (encode::xor, Op::Xor),
            (encode::mul, Op::Mul),
            (encode::divu, Op::Divu),
            (encode::remw, Op::Remw),
            (encode::sltu, Op::Sltu),
        ] {
            let i = decode(f(rd, rs1, rs2));
            prop_assert_eq!(i.op, op);
            prop_assert_eq!(i.rd, rd);
            prop_assert_eq!(i.rs1, rs1);
            prop_assert_eq!(i.rs2, rs2);
        }
    }

    #[test]
    fn itype_round_trip(rd in any_reg(), rs1 in any_reg(), imm in -2048i64..=2047) {
        for (f, op) in [
            (encode::addi as fn(Reg, Reg, i64) -> u32, Op::Addi),
            (encode::andi, Op::Andi),
            (encode::ld, Op::Ld),
            (encode::lbu, Op::Lbu),
            (encode::jalr, Op::Jalr),
        ] {
            let i = decode(f(rd, rs1, imm));
            prop_assert_eq!(i.op, op);
            prop_assert_eq!(i.rd, rd);
            prop_assert_eq!(i.rs1, rs1);
            prop_assert_eq!(i.imm, imm);
        }
    }

    #[test]
    fn stype_round_trip(rs1 in any_reg(), rs2 in any_reg(), imm in -2048i64..=2047) {
        let i = decode(encode::sd(rs2, rs1, imm));
        prop_assert_eq!(i.op, Op::Sd);
        prop_assert_eq!(i.rs1, rs1);
        prop_assert_eq!(i.rs2, rs2);
        prop_assert_eq!(i.imm, imm);
    }

    #[test]
    fn btype_round_trip(rs1 in any_reg(), rs2 in any_reg(), off in -2048i64..=2047) {
        let off = off * 2; // branch offsets are even
        let i = decode(encode::bne(rs1, rs2, off));
        prop_assert_eq!(i.op, Op::Bne);
        prop_assert_eq!(i.imm, off);
    }

    #[test]
    fn jtype_round_trip(rd in any_reg(), off in -524288i64..=524287) {
        let off = off * 2;
        let i = decode(encode::jal(rd, off));
        prop_assert_eq!(i.op, Op::Jal);
        prop_assert_eq!(i.rd, rd);
        prop_assert_eq!(i.imm, off);
    }

    #[test]
    fn utype_round_trip(rd in any_reg(), page in 0i64..=0xfffff) {
        let imm = page << 12;
        let i = decode(encode::lui(rd, imm));
        prop_assert_eq!(i.op, Op::Lui);
        // The decoder sign-extends from bit 31.
        prop_assert_eq!(i.imm as u32, imm as u32);
    }

    #[test]
    fn shift_round_trip(rd in any_reg(), rs1 in any_reg(), sh in 0u32..64) {
        let i = decode(encode::srai(rd, rs1, sh));
        prop_assert_eq!(i.op, Op::Srai);
        prop_assert_eq!(i.imm, sh as i64);
    }

    #[test]
    fn csr_round_trip(rd in any_reg(), rs1 in any_reg(), csr in 0u16..4096) {
        let i = decode(encode::csrrs(rd, csr, rs1));
        prop_assert_eq!(i.op, Op::Csrrs);
        prop_assert_eq!(i.csr, csr);
        prop_assert_eq!(i.rd, rd);
        prop_assert_eq!(i.rs1, rs1);
    }
}
