//! The persistent verification daemon: one consumer service multiplexing
//! many concurrent producer sessions over the DTH wire protocol.
//!
//! The one-shot socket runner pays a process spawn, a handshake and a
//! teardown per run. This crate keeps the consumer side resident: a
//! single-threaded poll loop accepts producer connections on a
//! Unix-domain and/or TCP listener, drives one
//! [`ProtoSession`](difftest_core::ProtoSession) per connection from
//! whatever bytes have arrived, and writes each session's DTHR result
//! blob back on its own connection. Producers are the unmodified socket
//! runner pointed at the daemon (`DIFFTEST_SERVE_ADDR` or
//! [`run_socket_at`](difftest_core::run_socket_at)); verdicts
//! are byte-identical to the spawned-child arrangement because both
//! sides share the same protocol and consumer pipeline.
//!
//! # Backpressure
//!
//! The loop reads at most [`ServeConfig::read_budget`] bytes per
//! connection per poll round and never buffers beyond the frame
//! decoder's current frame. A producer that outruns the service simply
//! fills the kernel socket buffer and stalls in its blocking frame
//! writes — producer-visible backoff with bounded daemon memory, the
//! same flow control the one-shot runner gets from a busy child.
//!
//! # Drain
//!
//! Setting the shutdown flag (SIGTERM/SIGINT in the binary) stops
//! accepting; in-flight sessions keep running until each reaches its
//! end frame, early stop or EOF and has its result delivered. The final
//! `serve.*` counters are exported through `DIFFTEST_OBS` alongside a
//! per-session export under the `serve.s<id>` label.

#![warn(missing_docs)]
// The daemon must survive hostile peers; failures are counters and
// dropped connections, never panics.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use difftest_core::{CloseReason, MuxStep, ServeAddr, SessionRegistry};
use difftest_stats::{export_to_env, Metrics};

/// Tuning for one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain listener path (stale files are unlinked on bind).
    pub unix_path: Option<PathBuf>,
    /// TCP listener address, e.g. `"127.0.0.1:0"` (port 0 picks a free
    /// port; read it back from [`Bound::tcp_addr`]).
    pub tcp_addr: Option<String>,
    /// Maximum concurrent producer connections; excess connections wait
    /// in the kernel accept backlog.
    pub max_sessions: usize,
    /// Read budget per connection per poll round, in bytes. This is the
    /// backpressure knob: smaller budgets make the daemon rotate between
    /// sessions more fairly and push slow-consumer stalls back into the
    /// producers sooner.
    pub read_budget: usize,
    /// How long a fresh connection may sit without a decodable
    /// handshake before it is dropped (`serve.sessions.hello_timeout`).
    pub hello_timeout: Duration,
    /// Sleep between poll rounds that made no progress.
    pub idle_sleep: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            unix_path: None,
            tcp_addr: None,
            max_sessions: 64,
            read_budget: 256 * 1024,
            hello_timeout: Duration::from_secs(10),
            idle_sleep: Duration::from_micros(500),
        }
    }
}

/// Listeners bound and ready to serve (bind early, serve later: tests
/// and [`spawn`] need the resolved addresses before the loop runs).
pub struct Bound {
    cfg: ServeConfig,
    unix: Option<UnixListener>,
    unix_path: Option<PathBuf>,
    tcp: Option<TcpListener>,
    tcp_local: Option<SocketAddr>,
}

impl Bound {
    /// The Unix listener's address, when one is bound.
    pub fn unix_addr(&self) -> Option<ServeAddr> {
        self.unix_path.clone().map(ServeAddr::Unix)
    }

    /// The TCP listener's resolved address (real port even when the
    /// config asked for port 0), when one is bound.
    pub fn tcp_addr(&self) -> Option<ServeAddr> {
        self.tcp_local.map(|a| ServeAddr::Tcp(a.to_string()))
    }
}

/// Binds the configured listeners without serving yet.
///
/// # Errors
///
/// Fails when no listener is configured, or when a bind itself fails.
pub fn bind(cfg: ServeConfig) -> io::Result<Bound> {
    if cfg.unix_path.is_none() && cfg.tcp_addr.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "difftest-serve: no listener configured (need a unix path or tcp addr)",
        ));
    }
    let (unix, unix_path) = match &cfg.unix_path {
        Some(path) => {
            // A stale file from a crashed daemon must not block rebinding.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            (Some(l), Some(path.clone()))
        }
        None => (None, None),
    };
    let (tcp, tcp_local) = match &cfg.tcp_addr {
        Some(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            l.set_nonblocking(true)?;
            let local = l.local_addr()?;
            (Some(l), Some(local))
        }
        None => (None, None),
    };
    Ok(Bound {
        cfg,
        unix,
        unix_path,
        tcp,
        tcp_local,
    })
}

/// Final service-level accounting, returned when the drain completes.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// The service metrics registry: `serve.sessions.*` lifecycle
    /// counters, `serve.conns.*`, `serve.bytes.read`, `serve.items`,
    /// and the `serve.sessions.active`/`.max` gauges.
    pub metrics: Metrics,
}

impl ServeSummary {
    /// Convenience counter read (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counters.get(name)
    }
}

/// Either transport a producer connection arrived on.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nb),
            Stream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One producer connection and its session binding.
struct Conn {
    stream: Stream,
    sid: u64,
    opened: Instant,
    /// After an early stop the result is already delivered but the
    /// producer may still be writing frames; keep reading and
    /// discarding until EOF so a TCP close cannot RST the result blob
    /// out from under the peer.
    discard: bool,
}

/// What a poll round decided about one connection.
enum Fate {
    Keep(bool),
    Drop(bool),
}

/// Runs the service loop until `shutdown` is observed **and** every
/// in-flight session has drained. Returns the final accounting; also
/// exports it (and a per-session export as each session closes) through
/// `DIFFTEST_OBS` when that is set.
///
/// # Errors
///
/// Only setup-shaped failures (none today) — peer misbehavior never
/// errors the loop; it is counted and the connection dropped.
pub fn serve(bound: Bound, shutdown: &AtomicBool) -> io::Result<ServeSummary> {
    let cfg = bound.cfg.clone();
    let mut reg = SessionRegistry::new();
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut draining = false;
    loop {
        let mut progress = false;
        if !draining && shutdown.load(Ordering::SeqCst) {
            draining = true;
            reg.metrics_mut().counters.add("serve.drains", 1);
        }
        if !draining {
            progress |= accept_round(&bound, &mut reg, &mut conns, &cfg);
        }
        let mut i = 0;
        while i < conns.len() {
            match pump_conn(&mut conns[i], &mut reg, &cfg, &mut buf) {
                Fate::Keep(p) => {
                    progress |= p;
                    i += 1;
                }
                Fate::Drop(p) => {
                    progress |= p;
                    conns.swap_remove(i);
                }
            }
        }
        if draining && conns.is_empty() {
            break;
        }
        if !progress {
            std::thread::sleep(cfg.idle_sleep);
        }
    }
    if let Some(path) = &bound.unix_path {
        let _ = std::fs::remove_file(path);
    }
    let summary = ServeSummary {
        metrics: reg.metrics().clone(),
    };
    if let Err(e) = export_to_env("serve", &summary.metrics, None) {
        eprintln!(
            "difftest-serve: {} export failed: {e}",
            difftest_stats::OBS_ENV
        );
    }
    Ok(summary)
}

/// Accepts whatever is pending on both listeners, up to capacity.
fn accept_round(
    bound: &Bound,
    reg: &mut SessionRegistry,
    conns: &mut Vec<Conn>,
    cfg: &ServeConfig,
) -> bool {
    let mut progress = false;
    if let Some(l) = &bound.unix {
        while conns.len() < cfg.max_sessions {
            match l.accept() {
                Ok((s, _)) => {
                    if s.set_nonblocking(true).is_err() {
                        continue;
                    }
                    progress = true;
                    admit(reg, conns, Stream::Unix(s), "serve.conns.unix");
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
    if let Some(l) = &bound.tcp {
        while conns.len() < cfg.max_sessions {
            match l.accept() {
                Ok((s, _)) => {
                    if s.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Result blobs and backpressure care about latency,
                    // not about coalescing tiny segments.
                    let _ = s.set_nodelay(true);
                    progress = true;
                    admit(reg, conns, Stream::Tcp(s), "serve.conns.tcp");
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
    progress
}

fn admit(
    reg: &mut SessionRegistry,
    conns: &mut Vec<Conn>,
    stream: Stream,
    transport: &'static str,
) {
    let sid = reg.open();
    reg.metrics_mut().counters.add("serve.conns.accepted", 1);
    reg.metrics_mut().counters.add(transport, 1);
    conns.push(Conn {
        stream,
        sid,
        opened: Instant::now(),
        discard: false,
    });
}

/// Reads up to the round's budget from one connection and advances its
/// session, handling every terminal step.
fn pump_conn(
    conn: &mut Conn,
    reg: &mut SessionRegistry,
    cfg: &ServeConfig,
    buf: &mut [u8],
) -> Fate {
    let mut progress = false;
    let mut spent = 0usize;
    while spent < cfg.read_budget {
        match conn.stream.read(buf) {
            Ok(0) => {
                if conn.discard {
                    return Fate::Drop(true);
                }
                let step = match reg.session(conn.sid) {
                    Some(s) => s.eof(),
                    None => return Fate::Drop(true),
                };
                return match step {
                    // EOF is how a clean stream ends when the end frame
                    // was lost, and how an early-stopped stream ends
                    // after the producer notices EPIPE; both sealed a
                    // result to deliver.
                    MuxStep::Finished | MuxStep::Decided => {
                        close_deliver(conn, reg, CloseReason::Finished);
                        Fate::Drop(true)
                    }
                    _ => {
                        reg.close(conn.sid, CloseReason::ProducerLost);
                        Fate::Drop(true)
                    }
                };
            }
            Ok(n) => {
                progress = true;
                spent += n;
                reg.metrics_mut().counters.add("serve.bytes.read", n as u64);
                if conn.discard {
                    continue;
                }
                let step = match reg.session(conn.sid) {
                    Some(s) => s.feed(&buf[..n]),
                    None => return Fate::Drop(true),
                };
                match step {
                    Ok(MuxStep::Running) => {}
                    Ok(MuxStep::Finished) => {
                        // Producer half-closed after its end frame, so
                        // nothing more is inbound: deliver and close.
                        close_deliver(conn, reg, CloseReason::Finished);
                        return Fate::Drop(true);
                    }
                    Ok(MuxStep::Decided) => {
                        // Early stop: deliver now, then drain the
                        // producer's remaining frames to EOF.
                        close_deliver(conn, reg, CloseReason::EarlyStop);
                        conn.discard = true;
                        return Fate::Keep(true);
                    }
                    Ok(MuxStep::Killed) => {
                        // Diagnostic kill knob: drop with no result, as
                        // the one-shot consumer process dies abruptly.
                        reg.close(conn.sid, CloseReason::Killed);
                        return Fate::Drop(true);
                    }
                    Ok(MuxStep::NoSession) | Err(_) => {
                        reg.close(conn.sid, CloseReason::Rejected);
                        return Fate::Drop(true);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => {
                reg.close(conn.sid, CloseReason::ProducerLost);
                return Fate::Drop(progress);
            }
        }
    }
    let hello_pending = reg.session(conn.sid).is_some_and(|s| !s.hello_seen());
    if hello_pending && conn.opened.elapsed() > cfg.hello_timeout {
        reg.close(conn.sid, CloseReason::HelloTimeout);
        return Fate::Drop(progress);
    }
    Fate::Keep(progress)
}

/// Closes the session, writes its result blob back (blocking just for
/// the write), and exports the session's own metrics under a
/// `serve.s<id>` label.
fn close_deliver(conn: &mut Conn, reg: &mut SessionRegistry, reason: CloseReason) {
    let sid = conn.sid;
    let Some(res) = reg.close(sid, reason) else {
        return;
    };
    let _ = conn.stream.set_nonblocking(false);
    let delivered = conn
        .stream
        .write_all(&res.blob)
        .and_then(|()| conn.stream.flush())
        .is_ok();
    let _ = conn.stream.set_nonblocking(true);
    if !delivered {
        reg.metrics_mut()
            .counters
            .add("serve.results.undelivered", 1);
    }
    if let Err(e) = export_to_env(&format!("serve.s{sid}"), &res.output.metrics, None) {
        eprintln!(
            "difftest-serve: {} export failed: {e}",
            difftest_stats::OBS_ENV
        );
    }
}

/// A daemon running on a background thread, for embedding in tests and
/// examples (the standalone binary is `difftest-serve`).
pub struct ServeHandle {
    shutdown: Arc<AtomicBool>,
    join: std::thread::JoinHandle<io::Result<ServeSummary>>,
    unix: Option<ServeAddr>,
    tcp: Option<ServeAddr>,
}

impl ServeHandle {
    /// Address producers should dial on the Unix transport.
    pub fn unix_addr(&self) -> Option<&ServeAddr> {
        self.unix.as_ref()
    }

    /// Address producers should dial on the TCP transport.
    pub fn tcp_addr(&self) -> Option<&ServeAddr> {
        self.tcp.as_ref()
    }

    /// Signals drain without waiting (in-flight sessions finish; new
    /// connections are refused work).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Signals drain and waits for the loop to finish.
    ///
    /// # Errors
    ///
    /// Propagates the loop's error; a panicked service thread becomes
    /// `io::ErrorKind::Other`.
    pub fn drain(self) -> io::Result<ServeSummary> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.join.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("difftest-serve: service thread panicked")),
        }
    }
}

/// Binds and serves on a background thread; addresses are resolved
/// before this returns, so producers can dial immediately.
///
/// # Errors
///
/// Fails when [`bind`] fails.
pub fn spawn(cfg: ServeConfig) -> io::Result<ServeHandle> {
    let bound = bind(cfg)?;
    let unix = bound.unix_addr();
    let tcp = bound.tcp_addr();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let join = std::thread::Builder::new()
        .name("difftest-serve".into())
        .spawn(move || serve(bound, &flag))?;
    Ok(ServeHandle {
        shutdown,
        join,
        unix,
        tcp,
    })
}
