//! `difftest-serve`: the standalone verification daemon.
//!
//! Listens on a Unix-domain socket and/or a TCP address and serves any
//! number of concurrent DiffTest-H producer sessions (point producers
//! at it with `DIFFTEST_SERVE_ADDR=unix:<path>` or `tcp:<host:port>`).
//! SIGTERM/SIGINT start a graceful drain: in-flight sessions finish and
//! get their verdicts before the process exits 0.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use difftest_serve::{bind, serve, ServeConfig};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

// Minimal signal(2) binding: the vendored shims carry no libc crate,
// and all the daemon needs is "flip a flag on SIGTERM/SIGINT".
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

const USAGE: &str = "\
difftest-serve: persistent DiffTest-H verification daemon

USAGE:
    difftest-serve [--unix PATH] [--tcp ADDR] [--max-sessions N]
                   [--hello-timeout-ms N]

With no listener flags, serves on a Unix socket at
$TMPDIR/difftest-serve-<pid>.sock. SIGTERM/SIGINT drain gracefully.
Producers connect via DIFFTEST_SERVE_ADDR=unix:<path> | tcp:<host:port>.";

fn main() {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("difftest-serve: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--unix" => cfg.unix_path = Some(PathBuf::from(value("--unix"))),
            "--tcp" => cfg.tcp_addr = Some(value("--tcp")),
            "--max-sessions" => match value("--max-sessions").parse::<usize>() {
                Ok(n) if n >= 1 => cfg.max_sessions = n,
                _ => {
                    eprintln!("difftest-serve: --max-sessions needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--hello-timeout-ms" => match value("--hello-timeout-ms").parse::<u64>() {
                Ok(ms) => cfg.hello_timeout = Duration::from_millis(ms),
                Err(_) => {
                    eprintln!("difftest-serve: --hello-timeout-ms needs an integer");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("difftest-serve: unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if cfg.unix_path.is_none() && cfg.tcp_addr.is_none() {
        cfg.unix_path =
            Some(std::env::temp_dir().join(format!("difftest-serve-{}.sock", std::process::id())));
    }

    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }

    let bound = match bind(cfg) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("difftest-serve: bind failed: {e}");
            std::process::exit(2);
        }
    };
    if let Some(addr) = bound.unix_addr() {
        println!("listening {addr}");
    }
    if let Some(addr) = bound.tcp_addr() {
        println!("listening {addr}");
    }
    println!("ready");
    let _ = std::io::stdout().flush();

    match serve(bound, &SHUTDOWN) {
        Ok(summary) => {
            println!(
                "drained: opened={} finished={} early_stop={} rejected={} lost={} items={}",
                summary.counter("serve.sessions.opened"),
                summary.counter("serve.sessions.finished"),
                summary.counter("serve.sessions.early_stop"),
                summary.counter("serve.sessions.rejected"),
                summary.counter("serve.sessions.producer_lost"),
                summary.counter("serve.items"),
            );
        }
        Err(e) => {
            eprintln!("difftest-serve: {e}");
            std::process::exit(1);
        }
    }
}
