//! End-to-end acceptance for the persistent verification daemon.
//!
//! Unlike the one-shot socket runner's suite this one needs no
//! harness-free `main`: producers connect to an in-process (or
//! spawned-binary) daemon instead of re-executing the test binary, so
//! the default libtest harness — and its thread-per-test parallelism —
//! is exactly what multiplexing needs exercised.
//!
//! Coverage: many concurrent sessions reach verdicts byte-identical to
//! the single-process engine over both transports, one mismatching
//! session cannot disturb its neighbors, hostile or vanished clients
//! are contained as counters, and drain (flag or SIGTERM on the real
//! binary) finishes in-flight sessions before exiting.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use difftest_core::proto::write_hello;
use difftest_core::{
    run_runner, run_socket_at, DiffConfig, Hello, RunOutcome, RunnerKind, RunnerReport, ServeAddr,
    SocketReport, SocketTuning,
};
use difftest_dut::{BugKind, BugSpec, DutConfig};
use difftest_serve::{spawn, ServeConfig};
use difftest_workload::Workload;

const MAX_CYCLES: u64 = 400_000;
const QUEUE_DEPTH: usize = 8;

fn engine(w: &Workload, bugs: Vec<BugSpec>) -> RunnerReport {
    run_runner(
        RunnerKind::Engine,
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        w,
        bugs,
        MAX_CYCLES,
        QUEUE_DEPTH,
        None,
    )
}

fn via_daemon(addr: &ServeAddr, w: &Workload, bugs: Vec<BugSpec>) -> SocketReport {
    run_socket_at(
        addr,
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        w,
        bugs,
        MAX_CYCLES,
        QUEUE_DEPTH,
        None,
        SocketTuning::default(),
    )
}

fn unix_sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("difftest-daemon-{tag}-{}.sock", std::process::id()))
}

/// Eight producers dialing one daemon at once, each with its own
/// workload: every per-session verdict must equal the single-process
/// engine on the same workload, and the high-water gauge must prove the
/// sessions genuinely overlapped.
#[test]
fn eight_concurrent_unix_sessions_match_engine() {
    let handle = spawn(ServeConfig {
        unix_path: Some(unix_sock("eight")),
        max_sessions: 16,
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.unix_addr().expect("unix addr").clone();
    let barrier = Arc::new(Barrier::new(8));
    let joins: Vec<_> = (0..8u64)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let w = Workload::microbench()
                    .seed(100 + i)
                    .iterations(40 + i as u32)
                    .build();
                barrier.wait();
                (i, via_daemon(&addr, &w, Vec::new()))
            })
        })
        .collect();
    for join in joins {
        let (i, rep) = join.join().expect("producer thread");
        let w = Workload::microbench()
            .seed(100 + i)
            .iterations(40 + i as u32)
            .build();
        let e = engine(&w, Vec::new());
        assert_eq!(rep.outcome, RunOutcome::GoodTrap, "session {i}");
        assert_eq!(rep.outcome, e.outcome, "session {i}");
        assert_eq!(rep.items, e.items, "session {i}: same stream, same items");
        assert_eq!(rep.instructions, e.instructions, "session {i}");
        assert!(rep.consumer_exit.is_none(), "daemon sessions own no child");
    }
    let summary = handle.drain().expect("drain");
    assert_eq!(summary.counter("serve.sessions.opened"), 8);
    assert_eq!(summary.counter("serve.sessions.finished"), 8);
    assert_eq!(
        summary.metrics.gauge("serve.sessions.active.max"),
        8,
        "sessions must have been concurrent, not serialized"
    );
    assert_eq!(summary.metrics.gauge("serve.sessions.active"), 0);
    assert_eq!(summary.counter("serve.conns.unix"), 8);
}

/// TCP transport, one session carrying an injected DUT bug among clean
/// neighbors: the buggy session must report the engine's exact
/// mismatch, the neighbors must stay clean — fault containment across
/// sessions of one daemon.
#[test]
fn tcp_mismatch_is_contained_to_its_session() {
    let handle = spawn(ServeConfig {
        tcp_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.tcp_addr().expect("tcp addr").clone();
    let bugs = vec![BugSpec::new(BugKind::RegWriteCorruption, 2_000)];
    let buggy_w = Workload::linux_boot().seed(7).iterations(300).build();
    let barrier = Arc::new(Barrier::new(4));
    let mut joins = Vec::new();
    {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        let bugs = bugs.clone();
        let w = buggy_w.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            (u64::MAX, via_daemon(&addr, &w, bugs))
        }));
    }
    for i in 0..3u64 {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let w = Workload::microbench().seed(200 + i).iterations(30).build();
            barrier.wait();
            (i, via_daemon(&addr, &w, Vec::new()))
        }));
    }
    for join in joins {
        let (i, rep) = join.join().expect("producer thread");
        if i == u64::MAX {
            let e = engine(&buggy_w, bugs.clone());
            assert_eq!(rep.outcome, RunOutcome::Mismatch, "buggy session");
            assert_eq!(rep.mismatch, e.mismatch, "mismatch identity");
        } else {
            assert_eq!(rep.outcome, RunOutcome::GoodTrap, "clean neighbor {i}");
        }
    }
    let summary = handle.drain().expect("drain");
    assert_eq!(summary.counter("serve.sessions.opened"), 4);
    assert_eq!(summary.counter("serve.sessions.finished"), 3);
    assert_eq!(summary.counter("serve.sessions.early_stop"), 1);
    assert_eq!(summary.counter("serve.conns.tcp"), 4);
}

/// Hostile and vanished raw clients: garbage magic is rejected, silence
/// trips the hello timeout, and a peer that dies right after its
/// handshake costs the daemon nothing but a counter — no hangs, no
/// panics, no effect on later sessions.
#[test]
fn hostile_and_lost_clients_are_contained() {
    let handle = spawn(ServeConfig {
        unix_path: Some(unix_sock("hostile")),
        hello_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let Some(ServeAddr::Unix(path)) = handle.unix_addr().cloned() else {
        panic!("unix addr");
    };

    // Wrong magic: dropped on the first mismatching byte.
    let mut garbage = UnixStream::connect(&path).expect("connect");
    garbage.write_all(b"NOPE").expect("write garbage");
    let mut tail = Vec::new();
    garbage
        .read_to_end(&mut tail)
        .expect("peer closes, not hangs");
    assert!(tail.is_empty(), "no result for a rejected client");

    // Silence: never sends a byte, must not hold a session slot forever.
    let silent = UnixStream::connect(&path).expect("connect");

    // Valid handshake, then the producer process "dies".
    let mut ghost = UnixStream::connect(&path).expect("connect");
    write_hello(
        &mut ghost,
        &Hello {
            config: DiffConfig::BNSD,
            cores: 1,
            kill_after: 0,
            trace: false,
            epoch_wall_ns: 0,
            words: vec![0x13],
        },
    )
    .expect("hello");
    drop(ghost);

    // A clean session afterwards must be unaffected.
    let w = Workload::microbench().seed(9).iterations(20).build();
    let rep = via_daemon(&ServeAddr::Unix(path), &w, Vec::new());
    assert_eq!(rep.outcome, RunOutcome::GoodTrap);

    drop(silent);
    let summary = handle.drain().expect("drain");
    assert_eq!(summary.counter("serve.sessions.rejected"), 1);
    // EOF right after a hello still seals a (empty-stream) result; the
    // write back fails because the peer is gone.
    assert_eq!(summary.counter("serve.results.undelivered"), 1);
    assert_eq!(summary.counter("serve.sessions.opened"), 4);
}

/// The silent client from above, isolated: with nothing else happening
/// the daemon must evict it via the hello timeout during drain.
#[test]
fn hello_timeout_evicts_silent_clients() {
    let handle = spawn(ServeConfig {
        unix_path: Some(unix_sock("timeout")),
        hello_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let Some(ServeAddr::Unix(path)) = handle.unix_addr().cloned() else {
        panic!("unix addr");
    };
    let mut silent = UnixStream::connect(&path).expect("connect");
    let mut tail = Vec::new();
    // The daemon closes the connection once the deadline passes.
    silent.read_to_end(&mut tail).expect("evicted, not hung");
    assert!(tail.is_empty());
    let summary = handle.drain().expect("drain");
    assert_eq!(summary.counter("serve.sessions.hello_timeout"), 1);
}

/// Graceful drain with sessions in flight: setting the shutdown flag
/// mid-run must let every producer finish its stream and receive its
/// DTHR verdict, then stop the loop.
#[test]
fn drain_finishes_inflight_sessions() {
    let handle = spawn(ServeConfig {
        unix_path: Some(unix_sock("drain")),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.unix_addr().expect("unix addr").clone();
    let flag = handle.shutdown_flag();
    let barrier = Arc::new(Barrier::new(4));
    let joins: Vec<_> = (0..3u64)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let w = Workload::linux_boot().seed(i).iterations(150).build();
                barrier.wait();
                (i, via_daemon(&addr, &w, Vec::new()))
            })
        })
        .collect();
    barrier.wait();
    // Let the producers connect and get their streams going, then pull
    // the plug while they are mid-flight.
    std::thread::sleep(Duration::from_millis(200));
    flag.store(true, Ordering::SeqCst);
    for join in joins {
        let (i, rep) = join.join().expect("producer thread");
        assert_eq!(
            rep.outcome,
            RunOutcome::GoodTrap,
            "session {i} must finish across the drain"
        );
    }
    let summary = handle.drain().expect("drain");
    assert_eq!(summary.counter("serve.drains"), 1);
    assert_eq!(summary.counter("serve.sessions.finished"), 3);
    assert_eq!(summary.metrics.gauge("serve.sessions.active"), 0);
}

/// The real binary under SIGTERM: spawn `difftest-serve`, run sessions
/// against it, signal mid-flight, and require a clean exit with the
/// final `serve.*` accounting exported through `DIFFTEST_OBS`.
#[test]
fn sigterm_binary_drains_gracefully() {
    let sock = unix_sock("sigterm");
    let obs = std::env::temp_dir().join(format!("difftest-serve-obs-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&obs);
    let mut child = Command::new(env!("CARGO_BIN_EXE_difftest-serve"))
        .arg("--unix")
        .arg(&sock)
        .env("DIFFTEST_OBS", &obs)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn difftest-serve");
    let mut lines = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    loop {
        line.clear();
        let n = lines.read_line(&mut line).expect("daemon stdout");
        assert!(n > 0, "daemon exited before becoming ready");
        if line.trim() == "ready" {
            break;
        }
    }

    let addr = ServeAddr::Unix(sock.clone());
    let joins: Vec<_> = (0..2u64)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let w = Workload::linux_boot().seed(40 + i).iterations(150).build();
                (i, via_daemon(&addr, &w, Vec::new()))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    let killed = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -TERM {}", child.id()))
        .status()
        .expect("send SIGTERM");
    assert!(killed.success());

    for join in joins {
        let (i, rep) = join.join().expect("producer thread");
        assert_eq!(
            rep.outcome,
            RunOutcome::GoodTrap,
            "session {i} must finish across SIGTERM"
        );
    }
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "drain must exit 0, got {status:?}");
    let mut rest = String::new();
    lines.read_to_string(&mut rest).expect("daemon stdout tail");
    assert!(rest.contains("drained:"), "missing drain summary: {rest:?}");

    let text = std::fs::read_to_string(&obs).expect("obs export");
    assert!(
        text.contains("\"runner\":\"serve\""),
        "service-level export"
    );
    assert!(text.contains("serve.sessions.finished"));
    assert!(
        text.contains("\"runner\":\"serve.s1\"") && text.contains("\"runner\":\"serve.s2\""),
        "per-session exports"
    );
    let _ = std::fs::remove_file(&obs);
}
