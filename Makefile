# Convenience targets mirroring the paper's artifact workflow (A.5).
# The RTL/Vivado/Palladium steps of the original artifact map onto pure
# cargo invocations here.

CARGO ?= cargo

.PHONY: all build test bench examples table5 table7 figures ablations doc clean ci faults obs \
	bench-record bench-smoke bench-compare socket seam intervals trace alloc serve

all: build

build:
	$(CARGO) build --workspace --release

test:
	$(CARGO) test --workspace

# A.5.2: optimization breakdown (Table 5), DIFF_CONFIG=Z/B/BN/BNSD is the
# DiffConfig enum of difftest-core.
table5:
	$(CARGO) bench -p difftest-bench --bench table5

table7:
	$(CARGO) bench -p difftest-bench --bench table7

figures:
	$(CARGO) bench -p difftest-bench --bench fig2
	$(CARGO) bench -p difftest-bench --bench fig4
	$(CARGO) bench -p difftest-bench --bench fig13
	$(CARGO) bench -p difftest-bench --bench fig14
	$(CARGO) bench -p difftest-bench --bench fig15

ablations:
	$(CARGO) bench -p difftest-bench --bench ablations

# The bench crate is not a default workspace member; opt in with -p.
bench:
	$(CARGO) bench -p difftest-bench

# End-to-end hot-path throughput baseline: full-length runs of every
# runner × config × fault scenario, written to BENCH_hotpath.json at the
# repo root (the committed `baseline` section is preserved; only
# `current` is refreshed). See DESIGN.md §11.
bench-record:
	$(CARGO) bench -p difftest-bench --bench hotpath -- --record BENCH_hotpath.json

# Short hotpath run for CI: exercises all scenarios, records nothing.
bench-smoke:
	$(CARGO) bench -p difftest-bench --bench hotpath -- --test

# Fails when events/sec regresses >10% against the committed artifact
# (tolerance via DIFFTEST_BENCH_TOL).
bench-compare:
	scripts/bench_compare

sharded:
	$(CARGO) bench -p difftest-bench --bench sharded

# What .github/workflows/ci.yml runs: formatting, lints, the runner-seam
# check, tier-1 build+test, and the lossy-link fault suite.
ci: seam
	$(CARGO) fmt --all -- --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings
	$(CARGO) build --release
	$(CARGO) test -q
	$(CARGO) test -p difftest-core --test fault_link --test fault_runners

# Runner modules build on the shared session/link/consume layer only —
# one runner reaching into another's internals is the coupling this
# refactor removed, so it fails CI if it ever comes back. The wire layer
# (proto/mux) has its own rules: it sits below every runner (imports
# none of them), only the socket runner speaks it in-process, and the
# difftest-serve crate builds on it exclusively (no runner internals).
RUNNER_SRCS = crates/core/src/engine.rs crates/core/src/threaded.rs \
	crates/core/src/sharded.rs crates/core/src/socket.rs \
	crates/core/src/intervals.rs
WIRE_SRCS = crates/core/src/proto.rs crates/core/src/mux.rs
INPROC_RUNNER_SRCS = crates/core/src/engine.rs crates/core/src/threaded.rs \
	crates/core/src/sharded.rs crates/core/src/intervals.rs
seam:
	@if grep -nE 'use crate::(engine|threaded|sharded|socket|intervals)(::|;| )' $(RUNNER_SRCS); then \
		echo "runner seam violated: runners must build on session/link/consume only"; \
		exit 1; \
	else \
		echo "runner seam clean: no runner imports another runner's internals"; \
	fi
	@if grep -nE 'use crate::(engine|threaded|sharded|socket|intervals)(::|;| )' $(WIRE_SRCS); then \
		echo "wire seam violated: proto/mux sit below the runners"; \
		exit 1; \
	else \
		echo "wire seam clean: proto/mux import no runner"; \
	fi
	@if grep -nE 'use crate::(proto|mux)(::|;| )' $(INPROC_RUNNER_SRCS); then \
		echo "wire seam violated: only the socket runner speaks the wire protocol"; \
		exit 1; \
	else \
		echo "wire seam clean: in-process runners stay off the wire layer"; \
	fi
	@if grep -rnE 'difftest_core::(engine|threaded|sharded|socket|intervals)(::|;| )' crates/serve/src; then \
		echo "service seam violated: difftest-serve builds on proto/mux only"; \
		exit 1; \
	else \
		echo "service seam clean: difftest-serve reaches no runner internals"; \
	fi

# Allocation-regression gate: a counting global allocator pins the
# packed consume path (admit → view-based streaming check) to zero
# steady-state heap allocations per packet.
alloc:
	$(CARGO) test -p difftest-core --test alloc_regression

# Lossy-link fault suite on its own (property tests + cross-runner grid).
faults:
	$(CARGO) test -p difftest-core --test fault_link --test fault_runners

# Process-separated socket runner smoke: the harness-free end-to-end
# suite (engine equivalence, fault grid, kill-the-consumer) plus the
# in-process cross-runner equivalence proptests.
socket:
	$(CARGO) test --release --test socket_runner
	$(CARGO) test --release -p difftest-core --test runner_equivalence

# Persistent verification daemon: concurrent-session acceptance over
# Unix and TCP (per-session verdicts vs the engine, mismatch and fault
# containment, flag- and SIGTERM-driven drain of the real binary), the
# hostile-bytes protocol fuzz, and the in-process example with its
# per-session observability assertions.
serve:
	$(CARGO) test --release -p difftest-serve
	$(CARGO) test --release -p difftest-core --test proto_prop
	$(CARGO) run --release --example serve

# Time-parallel interval runner: the engine-equivalence proptests
# (clean verdicts, mismatch identity up to a fusion window, fault
# containment and seed replay) plus the checkpoint/revert/re-execute
# coherence property the interval workers lean on.
intervals:
	$(CARGO) test --release -p difftest-core --test intervals_equivalence
	$(CARGO) test --release -p difftest-ref --test block_coherence checkpoint_revert

# Block-cache coherence suite: lockstep proptests of the basic-block
# compiled REF tier against the block-disabled interpreter oracle —
# self-modifying code, fences, reverts, traps, skips, and all six
# workload presets — plus the per-insn decode-cache coherence suite.
blocks:
	$(CARGO) test --release -p difftest-ref --test block_coherence --test icache_coherence

# Observability smoke: short workloads through every runner with
# DIFFTEST_OBS set; asserts the JSONL parses, carries all seven phases,
# histogram summaries, and a flight snapshot on the injected failure.
obs:
	$(CARGO) run --release --example observability

# Causal span tracing smoke (DESIGN.md §15). The socket example's clean
# run exports one merged Chrome trace spanning both processes;
# trace_check holds it to the cross-process bar (matched pack→unpack
# flow arrows, producer and consumer pids). The observability example
# then exports and self-validates the engine/sharded/interval traces,
# and trace_check re-gates the files from the outside.
trace:
	mkdir -p target/trace
	DIFFTEST_TRACE=target/trace/socket.json $(CARGO) run --release --example socket
	scripts/trace_check --require-flows target/trace/socket.json
	DIFFTEST_TRACE=target/trace/obs.json $(CARGO) run --release --example observability
	scripts/trace_check --require-flows target/trace/obs.engine.json \
		target/trace/obs.intervals.json
	scripts/trace_check target/trace/obs.sharded.json

# A.5.1-style quick start: run the co-simulation end to end.
examples:
	$(CARGO) run --release --example quickstart
	$(CARGO) run --release --example linux_boot
	$(CARGO) run --release --example bug_hunt
	$(CARGO) run --release --example tuning
	$(CARGO) run --release --example threaded
	$(CARGO) run --release --example socket

# Regenerate the committed reference outputs.
reference: 
	mkdir -p reference
	for b in table5 table7 fig2 fig4 fig13 fig14 fig15 ablations; do \
		$(CARGO) bench -p difftest-bench --bench $$b 2>/dev/null | tail -n +2 > reference/$$b.txt; \
	done

doc:
	$(CARGO) doc --workspace --no-deps

clean:
	$(CARGO) clean
