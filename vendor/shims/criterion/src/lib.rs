//! Offline mini benchmark harness exposing the slice of the `criterion`
//! API this workspace uses: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`Throughput`], `criterion_group!`,
//! `criterion_main!`, and [`black_box`].
//!
//! The container building this repo has no registry access, so the real
//! crate cannot be fetched. Measurement here is deliberately simple but
//! honest: each benchmark calibrates a batch size to a minimum timed
//! window, runs `sample_size` batches, and reports mean and best
//! time-per-iteration plus derived throughput. There are no HTML reports,
//! statistical outlier tests, or saved baselines — numbers print to
//! stdout, which is all the repo's bench targets consume.
//!
//! When invoked by `cargo test` (which passes `--test` to `harness =
//! false` bench binaries), benchmarks run a single iteration each so the
//! target doubles as a smoke test without burning CI time.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    min_window: Duration,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. In test mode, shrink to a smoke
        // run: one sample, no calibration window.
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            min_window: Duration::from_millis(25),
            smoke_test,
        }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let min_window = self.min_window;
        let smoke = self.smoke_test;
        run_one(id, None, sample_size, min_window, smoke, f);
        self
    }
}

/// A named group sharing one throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by one iteration of each benchmark.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.min_window,
            self.criterion.smoke_test,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) times a routine.
pub struct Bencher {
    sample_size: usize,
    min_window: Duration,
    smoke_test: bool,
    /// Mean nanoseconds per iteration over all samples.
    mean_ns: f64,
    /// Best (lowest) nanoseconds per iteration across samples.
    best_ns: f64,
    measured: bool,
}

impl Bencher {
    /// Measures `routine`, keeping its return value alive via
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.smoke_test {
            black_box(routine());
            self.mean_ns = 0.0;
            self.best_ns = 0.0;
            self.measured = true;
            return;
        }

        // Calibrate: double the batch size until one batch fills the
        // minimum window, so short routines are timed over many calls.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.min_window || batch >= 1 << 30 {
                break;
            }
            batch = if elapsed.is_zero() {
                batch * 8
            } else {
                // Aim straight at the window, with headroom.
                let scale = self.min_window.as_secs_f64() / elapsed.as_secs_f64();
                (batch as f64 * scale.max(2.0)).min(1e9) as u64
            }
            .max(batch + 1);
        }

        let mut total_ns = 0.0f64;
        let mut best_ns = f64::INFINITY;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter = t.elapsed().as_nanos() as f64 / batch as f64;
            total_ns += per_iter;
            best_ns = best_ns.min(per_iter);
        }
        self.mean_ns = total_ns / self.sample_size as f64;
        self.best_ns = best_ns;
        self.measured = true;
    }
}

fn run_one<F>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    min_window: Duration,
    smoke_test: bool,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        min_window,
        smoke_test,
        mean_ns: 0.0,
        best_ns: 0.0,
        measured: false,
    };
    f(&mut b);
    if !b.measured {
        println!("{id:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    if smoke_test {
        println!("{id:<40} ok (smoke test)");
        return;
    }
    let mut line = format!(
        "{id:<40} {:>12}/iter (best {})",
        fmt_ns(b.mean_ns),
        fmt_ns(b.best_ns)
    );
    if let Some(t) = throughput {
        let per_sec = |work: u64| work as f64 / (b.mean_ns / 1e9);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>12} elem/s", fmt_rate(per_sec(n))));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>12} B/s", fmt_rate(per_sec(n))));
            }
        }
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declares a runnable group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_routine() {
        let mut c = Criterion::default().sample_size(3);
        // Force measurement mode regardless of harness args.
        c.smoke_test = false;
        c.min_window = Duration::from_micros(200);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0u64..4).map(black_box).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn formats_are_sane() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_rate(2_500_000.0), "2.50 M");
    }
}
