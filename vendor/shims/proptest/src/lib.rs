//! Offline mini property-testing runner exposing the slice of the
//! `proptest` API this workspace uses: [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`any`],
//! [`collection::vec`], `Just`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! The container building this repo has no registry access, so the real
//! crate cannot be fetched. Differences from upstream are deliberate and
//! small: cases are drawn from a deterministic per-test-name RNG (no
//! persisted failure files), there is no shrinking (a failing case panics
//! with the generated values via the normal assert message), and
//! `prop_assume!` rejections simply skip the case instead of being
//! re-drawn. Every property in the repo still runs its full case budget
//! with well-mixed inputs.

use std::marker::PhantomData;

pub mod test_runner;

use test_runner::TestRng;

/// Runner configuration; only the case budget is honored here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from this strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            f,
            _marker: PhantomData,
        }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F, S>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            f,
            _marker: PhantomData,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F, O> {
    source: S,
    f: F,
    _marker: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, S2> {
    source: S,
    f: F,
    _marker: PhantomData<fn() -> S2>,
}

impl<S, F, S2> Strategy for FlatMap<S, F, S2>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.sample(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-range strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive type.
pub struct AnyPrim<T>(PhantomData<fn() -> T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrim(PhantomData)
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            type Strategy = ($($s::Strategy,)+);
            fn arbitrary() -> Self::Strategy {
                ($($s::arbitrary(),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: an exact size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Yields vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample(self.size.min..self.size.max_excl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn` runs `config.cases` times over
/// freshly generated inputs from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            a in 10u8..20,
            pair in (0usize..4, -8i64..=8),
            flag in any::<bool>(),
        ) {
            prop_assert!((10..20).contains(&a));
            prop_assert!(pair.0 < 4);
            prop_assert!((-8..=8).contains(&pair.1));
            let _ = flag;
        }

        #[test]
        fn vec_lengths_follow_spec(
            exact in crate::collection::vec(any::<u8>(), 7usize),
            ranged in crate::collection::vec(any::<u16>(), 2..5),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
        }

        #[test]
        fn oneof_and_maps_compose(
            v in prop_oneof![Just(-1i64), Just(1i64), Just(7i64)],
            doubled in (1u32..100).prop_map(|x| x * 2),
            nested in (1usize..4).prop_flat_map(|n| crate::collection::vec(any::<u8>(), n)),
        ) {
            prop_assert!(v == -1 || v == 1 || v == 7);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(!nested.is_empty() && nested.len() < 4);
            prop_assume!(v > 0);
            prop_assert!(v >= 1);
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        let mut c = TestRng::for_test("u");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
