//! The deterministic RNG backing case generation.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SampleRange, SeedableRng};

/// Deterministic per-test generator: seeded from the fully qualified test
/// name so each property gets an independent, reproducible stream.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the generator for the test named `name`.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, folded into a fixed session seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ 0xd1ff_7e57_0000_0001),
        }
    }

    /// Returns the next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws uniformly from `range`.
    pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.random_range(range)
    }
}
