//! Offline stand-in for the `crossbeam` channel API used by this workspace:
//! [`channel::bounded`] / [`channel::unbounded`] MPMC channels with
//! blocking `send`/`recv`, `try_recv`, iteration, and disconnect semantics.
//!
//! The container building this repo has no registry access, so the real
//! crate cannot be fetched. This implementation is a classic two-condvar
//! bounded queue — not lock-free like upstream, but semantically identical
//! for the producer/consumer patterns the runners use, and honest about it
//! in the name of keeping the tier-1 build self-contained.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    /// `send` blocks while the channel is full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    /// Creates an unbounded channel; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued or every receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns the message in [`SendError`] when no receiver remains.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self.shared.not_full.wait(queue).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when the channel is at capacity,
        /// [`TrySendError::Disconnected`] when no receiver remains.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.not_empty.wait(queue).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally no sender remains.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake senders blocked on a full queue.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn bounded_round_trip_with_backpressure() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = channel::bounded::<u32>(1);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn multiple_consumers_drain_disjointly() {
        let (tx, rx) = channel::bounded::<u64>(8);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
