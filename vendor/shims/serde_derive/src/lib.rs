//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace uses serde derives purely as forward-compatible metadata
//! on config structs; nothing serializes at runtime. The matching `serde`
//! shim provides blanket marker impls, so these derives emit no code.

use proc_macro::TokenStream;

/// Emits nothing; `serde::Serialize` is a blanket-implemented marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing; `serde::Deserialize` is a blanket-implemented marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
