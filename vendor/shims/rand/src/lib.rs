//! Offline stand-in for `rand`, covering the slice of the 0.10 API this
//! workspace uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods `random_range` / `random_bool`.
//!
//! The container building this repo has no registry access, so the real
//! crate cannot be fetched. Workload generation only needs a *seeded,
//! deterministic, well-mixed* stream — not a cryptographic one — so
//! `StdRng` here is xoshiro256** seeded through SplitMix64 (the reference
//! construction from Blackman & Vigna). Streams differ from upstream
//! `rand`, which is fine: nothing in the repo depends on upstream values,
//! only on per-seed determinism.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with words of the stream.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as the `rand` crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Integer types uniform sampling knows how to widen and narrow.
///
/// A single blanket [`SampleRange`] impl over this trait (rather than one
/// impl per concrete range type) matters for type inference: it lets the
/// element type of a range literal unify with how the sampled value is
/// used, exactly as upstream `rand`'s `SampleUniform` does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to the common sampling domain.
    fn widen(self) -> i128;

    /// Narrows back from the common sampling domain.
    fn narrow(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn widen(self) -> i128 {
                self as i128
            }

            fn narrow(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a generator can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let (lo, hi) = (self.start.widen(), self.end.widen());
        let span = (hi - lo) as u128;
        let v = (rng.next_u64() as u128) % span;
        T::narrow(lo + v as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = (self.start().widen(), self.end().widen());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        let v = (rng.next_u64() as u128) % span;
        T::narrow(lo + v as i128)
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 high bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Compatibility alias: older call sites spell the extension trait `Rng`.
pub use self::RngExt as Rng;

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: this stand-in has a single generator quality tier.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-512i64..512);
            assert!((-512..512).contains(&v));
            let u = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
