//! Offline stand-in for `serde`.
//!
//! This workspace applies `#[derive(Serialize, Deserialize)]` to config
//! structs as forward-compatible metadata but never serializes anything
//! (no `serde_json` or other format crate exists in the dependency tree).
//! The container building this repo has no registry access, so the real
//! crate cannot be fetched; this shim keeps the same spelling compiling:
//! the traits are markers with blanket impls and the derives are no-ops.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser` far enough for `Serialize` imports.
pub mod ser {
    pub use crate::Serialize;
}
