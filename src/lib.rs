//! DiffTest-H: a semantic-aware, hardware-accelerated co-simulation framework
//! for processor verification, reproduced as a pure-Rust system.
//!
//! This umbrella crate re-exports every sub-crate of the workspace so that
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! - [`isa`]: RV64 instruction definitions, decoder and assembler.
//! - [`ref_model`]: the golden reference model (instruction-set simulator).
//! - [`event`]: the 32-type verification event catalog and codecs.
//! - [`dut`]: the cycle-level design-under-test model with bug injection.
//! - [`platform`]: LogGP link models of Palladium, FPGA and Verilator hosts.
//! - [`core`]: Batch, Squash, Replay and the co-simulation engine.
//! - [`serve`]: the persistent verification daemon multiplexing many
//!   producer sessions over the DTH wire protocol.
//! - [`workload`]: RV64 workload generators.
//! - [`stats`]: performance counters, report tables and the trace toolkit.
//!
//! # Quick start
//!
//! ```
//! use difftest_h::core::{CoSimulation, DiffConfig, RunOutcome};
//! use difftest_h::dut::DutConfig;
//! use difftest_h::platform::Platform;
//! use difftest_h::workload::Workload;
//!
//! let workload = Workload::microbench().seed(7).iterations(20).build();
//! let mut sim = CoSimulation::builder()
//!     .dut(DutConfig::nutshell())
//!     .platform(Platform::palladium())
//!     .config(DiffConfig::BNSD)
//!     .max_cycles(200_000)
//!     .build(&workload)
//!     .expect("valid co-simulation setup");
//! let report = sim.run();
//! assert_eq!(report.outcome, RunOutcome::GoodTrap);
//! ```

pub use difftest_core as core;
pub use difftest_dut as dut;
pub use difftest_event as event;
pub use difftest_isa as isa;
pub use difftest_platform as platform;
pub use difftest_ref as ref_model;
pub use difftest_serve as serve;
pub use difftest_stats as stats;
pub use difftest_workload as workload;
