//! Boot-workload sweep: the paper's headline scenario across every
//! optimization level and both hardware platforms.
//!
//! ```text
//! cargo run --release --example linux_boot
//! ```

use difftest_h::core::{CoSimulation, DiffConfig, RunOutcome};
use difftest_h::dut::DutConfig;
use difftest_h::platform::Platform;
use difftest_h::stats::{fmt_hz, fmt_pct, fmt_ratio, Table};
use difftest_h::workload::Workload;

fn main() {
    let workload = Workload::linux_boot().seed(5).iterations(500).build();

    for platform in [Platform::palladium(), Platform::fpga()] {
        let mut table = Table::new(
            format!("XiangShan boot on {}", platform.name()),
            &[
                "Config",
                "Speed",
                "Speedup",
                "Transfers",
                "Bytes",
                "Overhead",
            ],
        );
        let mut base = 0.0;
        let mut transcript = Vec::new();
        for (i, config) in DiffConfig::ALL.into_iter().enumerate() {
            let mut sim = CoSimulation::builder()
                .dut(DutConfig::xiangshan_default())
                .platform(platform.clone())
                .config(config)
                .max_cycles(150_000)
                .build(&workload)
                .expect("valid setup");
            let report = sim.run();
            assert_ne!(
                report.outcome,
                RunOutcome::Mismatch,
                "boot must verify cleanly"
            );
            if i == 0 {
                base = report.speed_hz;
            }
            transcript = sim.dut().cores()[0].devices().uart.transcript().to_vec();
            table.row(&[
                config.label().to_owned(),
                fmt_hz(report.speed_hz),
                fmt_ratio(report.speed_hz / base),
                format!("{}", report.invokes),
                format!("{}", report.bytes),
                fmt_pct(report.comm_overhead_fraction()),
            ]);
        }
        println!("{table}");
        let shown: String = transcript.iter().take(48).map(|b| *b as char).collect();
        println!("UART transcript (first bytes): {shown:?}\n");
    }
}
