//! Persistent verification daemon smoke: one in-process `difftest-serve`
//! service, three concurrent producer sessions across both transports,
//! and the per-session observability trail that multiplexing keeps
//! intact.
//!
//! The one-shot socket runner pays a consumer-process spawn per run;
//! here the consumer side is resident and producers just dial it —
//! two over the Unix listener, one over TCP. Every verdict must equal
//! the single-process engine on the same workload, and the drain
//! summary plus the `DIFFTEST_OBS` JSONL must show the daemon's
//! accounting: `serve.*` lifecycle counters at the service level and a
//! `serve.s<id>` export per session.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use std::sync::Arc;

use difftest_h::core::{
    run_runner, run_socket_at, DiffConfig, RunOutcome, RunnerKind, ServeAddr, SocketTuning,
};
use difftest_h::dut::DutConfig;
use difftest_h::serve::{spawn, ServeConfig};
use difftest_h::stats::{parse_json, OBS_ENV};
use difftest_h::workload::Workload;

const MAX_CYCLES: u64 = 400_000;
const QUEUE_DEPTH: usize = 8;

fn session(addr: &ServeAddr, seed: u64) -> (u64, RunOutcome, u64) {
    let w = Workload::microbench().seed(seed).iterations(30).build();
    let rep = run_socket_at(
        addr,
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        &w,
        Vec::new(),
        MAX_CYCLES,
        QUEUE_DEPTH,
        None,
        SocketTuning::default(),
    );
    let engine = run_runner(
        RunnerKind::Engine,
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        &w,
        Vec::new(),
        MAX_CYCLES,
        QUEUE_DEPTH,
        None,
    );
    assert_eq!(rep.outcome, engine.outcome, "seed {seed}: daemon vs engine");
    assert_eq!(rep.items, engine.items, "seed {seed}: item volume");
    (seed, rep.outcome, rep.items)
}

fn main() {
    // Export somewhere self-contained unless the caller chose a path.
    let obs_path = match std::env::var_os(OBS_ENV) {
        Some(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => {
            let p = std::env::temp_dir().join("difftest-serve-smoke.jsonl");
            std::env::set_var(OBS_ENV, &p);
            p
        }
    };
    let _ = std::fs::remove_file(&obs_path);

    let handle = spawn(ServeConfig {
        unix_path: Some(std::env::temp_dir().join(format!(
            "difftest-serve-example-{}.sock",
            std::process::id()
        ))),
        tcp_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let unix = Arc::new(handle.unix_addr().expect("unix addr").clone());
    let tcp = Arc::new(handle.tcp_addr().expect("tcp addr").clone());
    println!("serve: daemon up on {unix} and {tcp}");

    let mut joins = Vec::new();
    for (seed, addr) in [(31, &unix), (32, &unix), (33, &tcp)] {
        let addr = Arc::clone(addr);
        joins.push(std::thread::spawn(move || session(&addr, seed)));
    }
    for join in joins {
        let (seed, outcome, items) = join.join().expect("producer thread");
        assert_eq!(outcome, RunOutcome::GoodTrap, "seed {seed}");
        println!("serve: session seed {seed}: {outcome:?}, {items} items checked");
    }

    let summary = handle.drain().expect("drain");
    assert_eq!(summary.counter("serve.sessions.opened"), 3);
    assert_eq!(summary.counter("serve.sessions.finished"), 3);
    assert_eq!(summary.counter("serve.conns.unix"), 2);
    assert_eq!(summary.counter("serve.conns.tcp"), 1);
    assert_eq!(summary.metrics.gauge("serve.sessions.active"), 0);
    println!(
        "serve: drained — {} sessions, {} items, {} bytes read, peak concurrency {}",
        summary.counter("serve.sessions.opened"),
        summary.counter("serve.items"),
        summary.counter("serve.bytes.read"),
        summary.metrics.gauge("serve.sessions.active.max"),
    );

    // The JSONL trail: every line parses, each session exported its own
    // metrics under `serve.s<id>`, and the final service export carries
    // the lifecycle counters asserted above.
    let text = std::fs::read_to_string(&obs_path).expect("obs export");
    let mut runs = Vec::new();
    let mut serve_counters = 0u64;
    let mut current_is_serve = false;
    for line in text.lines() {
        let v = parse_json(line).expect("well-formed JSONL line");
        match v.get("type").and_then(|t| t.as_str()) {
            Some("run") => {
                let runner = v
                    .get("runner")
                    .and_then(|r| r.as_str())
                    .expect("runner label")
                    .to_string();
                current_is_serve = runner == "serve";
                runs.push(runner);
            }
            Some("counter") if current_is_serve => {
                let name = v.get("name").and_then(|n| n.as_str()).unwrap_or("");
                if name.starts_with("serve.") {
                    serve_counters += 1;
                }
            }
            _ => {}
        }
    }
    for sid in 1..=3u64 {
        assert!(
            runs.iter().any(|r| r == &format!("serve.s{sid}")),
            "missing per-session export serve.s{sid} in {runs:?}"
        );
    }
    assert!(
        runs.iter().any(|r| r == "serve"),
        "missing service-level export in {runs:?}"
    );
    assert!(
        serve_counters >= 5,
        "service export carries too few serve.* counters"
    );
    println!(
        "serve: {} exports in {} ({} service counters) — all good",
        runs.len(),
        obs_path.display(),
        serve_counters
    );
}
