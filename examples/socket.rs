//! Process-separated co-simulation: the DUT producer and the checking
//! consumer live in different OS processes, joined by a Unix-domain
//! socket carrying the CRC-framed wire format.
//!
//! The isolation is the point: a consumer that crashes — simulated here
//! with [`SocketTuning::kill_consumer_after`] — takes down its own
//! address space only, and the producer reports a typed
//! [`RunOutcome::LinkError`] with the child's exit code instead of
//! panicking or wedging.
//!
//! ```text
//! cargo run --release --example socket
//! ```
//!
//! With `DIFFTEST_TRACE=<path>` the clean run exports one merged
//! Chrome/Perfetto trace spanning both processes: the handshake carries
//! the producer's clock epoch, so the consumer's spans land on the same
//! timeline (`make trace` gates this through `scripts/trace_check`).

use difftest_h::core::{
    run_socket, run_socket_tuned, DiffConfig, RunOutcome, SocketTuning, KILLED_EXIT,
};
use difftest_h::dut::DutConfig;
use difftest_h::stats::TRACE_ENV;
use difftest_h::workload::Workload;

fn main() {
    // MUST be first: the runner re-executes this binary as its consumer
    // process, which diverges here and never returns.
    difftest_h::core::child_entry();

    let workload = Workload::linux_boot().seed(42).iterations(1_000).build();

    // A healthy run: verdict-identical to the in-process runners, but
    // every packet genuinely crossed a process boundary.
    let report = run_socket(
        DutConfig::xiangshan_default(),
        DiffConfig::BNSD,
        &workload,
        Vec::new(),
        400_000,
        8,
    );
    assert_eq!(report.outcome, RunOutcome::GoodTrap);
    println!("== clean run ==");
    println!(
        "{} cycles, {} instructions, {} items checked in {:.2}s \
         ({:.0} Kcycles/s across the socket)",
        report.cycles,
        report.instructions,
        report.items,
        report.wall_s,
        report.cycles_per_sec / 1e3,
    );
    println!(
        "consumer process exited {:?}; checker saw {} transfers, {} bytes",
        report.consumer_exit,
        report.metrics.counters.get("obs.transfers"),
        report.metrics.counters.get("obs.bytes"),
    );

    if let Some(p) = std::env::var_os(TRACE_ENV) {
        // The clean run above wrote one merged trace covering both
        // processes. Clear the var so the kill-run below — whose child
        // dies mid-stream — doesn't truncate it with a producer-only
        // export.
        std::env::remove_var(TRACE_ENV);
        println!(
            "merged socket trace written to {}",
            std::path::PathBuf::from(p).display()
        );
    }

    // The same run with the consumer process dying after two packets.
    let report = run_socket_tuned(
        DutConfig::xiangshan_default(),
        DiffConfig::BNSD,
        &workload,
        Vec::new(),
        400_000,
        8,
        None,
        SocketTuning {
            kill_consumer_after: Some(2),
        },
    );
    println!("\n== consumer killed after 2 packets ==");
    match report.outcome {
        RunOutcome::LinkError { kind, seq, .. } => println!(
            "typed outcome: {kind} at seq {seq} (consumer exit {:?}, expected {KILLED_EXIT})",
            report.consumer_exit,
        ),
        other => panic!("consumer death must surface as a link error, got {other:?}"),
    }
    let snapshot = report
        .flight
        .as_ref()
        .expect("failure carries flight records");
    println!(
        "flight recorder kept {} records for the post-mortem",
        snapshot.records.len()
    );
}
