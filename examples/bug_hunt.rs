//! Bug hunt: inject a microarchitectural bug, detect it on the optimized
//! (fused) stream, and let Replay recover instruction-level localization.
//!
//! ```text
//! cargo run --release --example bug_hunt
//! ```

use difftest_h::core::{CoSimulation, DiffConfig, RunOutcome};
use difftest_h::dut::{BugKind, BugSpec, DutConfig};
use difftest_h::platform::Platform;
use difftest_h::workload::Workload;

fn main() {
    let workload = Workload::linux_boot().seed(7).iterations(300).build();

    // A store silently commits a flipped data bit after ~25k instructions —
    // the kind of latent memory-hierarchy bug of the paper's Table 6.
    let bug = BugSpec::new(BugKind::StoreValueCorruption, 25_000);
    println!("injecting: {:?} ({})\n", bug.kind, bug.kind.category());

    for config in [DiffConfig::B, DiffConfig::BNSD] {
        let mut sim = CoSimulation::builder()
            .dut(DutConfig::xiangshan_default())
            .platform(Platform::palladium())
            .config(config)
            .bugs(vec![bug.clone()])
            .max_cycles(300_000)
            .build(&workload)
            .expect("valid setup");
        let report = sim.run();

        println!("== {config} ==");
        assert_eq!(report.outcome, RunOutcome::Mismatch, "bug must be caught");
        println!(
            "detected at cycle {} after {} instructions",
            report.cycles, report.instructions
        );
        let failure = report.failure.expect("mismatch carries a report");
        println!("{failure}");
        match config {
            DiffConfig::BNSD => {
                // The fused stream lost per-instruction detail; Replay
                // re-transmitted the buffered unfused events and localized
                // the exact instruction.
                let precise = failure.precise.expect("replay localizes");
                println!(
                    "-> Replay reprocessed {} events over tokens [{}, {}] and pinned \
                     instruction {} ({})",
                    failure.replayed_events,
                    failure.token_range.0,
                    failure.token_range.1,
                    precise.seq,
                    precise.check
                );
            }
            _ => println!("-> unfused stream: the mismatch is already instruction-precise"),
        }
        println!();
    }
}
