//! The tuning toolkit (paper §5): trace dump/reload for DUT-decoupled
//! iterative debugging, offline query analysis, and performance counters.
//!
//! ```text
//! cargo run --release --example tuning
//! ```

use difftest_h::core::{Checker, Verdict, WireItem};
use difftest_h::dut::{Dut, DutConfig};
use difftest_h::event::Category;
use difftest_h::ref_model::{Memory, RefModel};
use difftest_h::stats::{trace, Counters, Table, TraceQuery};
use difftest_h::workload::Workload;

fn main() {
    let workload = Workload::linux_boot().seed(11).iterations(150).build();
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, workload.words());

    // --- 1. Record a DUT trace (the expensive part, done once) -----------
    let mut dut = Dut::new(DutConfig::xiangshan_default(), &image, Vec::new());
    let mut events = Vec::new();
    while dut.halted().is_none() && dut.cycles() < 100_000 {
        events.extend(dut.tick().events);
    }
    println!(
        "recorded {} events over {} cycles ({} instructions)",
        events.len(),
        dut.cycles(),
        dut.total_commits()
    );

    let mut file = Vec::new();
    trace::dump(&mut file, &events).expect("trace serializes");
    println!("trace size on disk: {} bytes\n", file.len());

    // --- 2. Offline analysis (SQL-substitute query engine) ---------------
    let reloaded = trace::reload(&file[..]).expect("trace reloads");
    assert_eq!(reloaded, events);

    let q = TraceQuery::new(&reloaded);
    let mut table = Table::new(
        "Events by category (trace query)",
        &["Category", "Count", "Bytes", "Rate/cycle"],
    );
    for (cat, stats) in q.group_by_category() {
        table.row(&[
            cat.name().to_owned(),
            format!("{}", stats.count),
            format!("{}", stats.bytes),
            format!("{:.3}", stats.rate_per_cycle()),
        ]);
    }
    println!("{table}");

    let ndes = TraceQuery::new(&reloaded).nde();
    println!(
        "non-deterministic events: {} ({} bytes); control-flow share: {}\n",
        ndes.len(),
        ndes.total_bytes(),
        TraceQuery::new(&reloaded)
            .category(Category::ControlFlow)
            .len()
    );

    // --- 3. DUT-decoupled iterative debugging ----------------------------
    // Drive the verification logic from the trace alone — no DUT run.
    let mut checker = Checker::new(vec![RefModel::new(image)], false);
    let mut counters = Counters::new();
    for ev in &reloaded {
        counters.inc("toolkit.events_replayed");
        counters.add("toolkit.bytes_replayed", ev.encoded_len() as u64);
        let item = WireItem::Plain {
            core: ev.core,
            event: ev.event.clone(),
        };
        match checker.process(item).expect("clean trace verifies") {
            Verdict::Continue => {}
            Verdict::Halt { good, .. } => {
                counters.inc("toolkit.good_traps");
                assert!(good);
                break;
            }
        }
    }
    println!("trace-driven checking finished:\n{counters}");
}
