//! Observability smoke: run every runner with `DIFFTEST_OBS` set and
//! validate the exported JSONL — all seven phases present, packet
//! histograms populated, and a flight-recorder snapshot attached to the
//! fault-injected failure. The engine, sharded and interval runners
//! additionally export Chrome/Perfetto span traces (DESIGN.md §15) that
//! are validated in-process and counted via the `trace.*` counters.
//!
//! ```text
//! DIFFTEST_OBS=metrics.jsonl DIFFTEST_TRACE=trace.json \
//!     cargo run --release --example observability
//! ```
//!
//! Without the env vars the example exports to temporary files so
//! `make obs` is self-contained. `DIFFTEST_TRACE` is treated as a stem:
//! the three traced runners write `<stem>.engine.json`,
//! `<stem>.sharded.json` and `<stem>.intervals.json`.

use std::collections::BTreeSet;
use std::path::PathBuf;

use difftest_h::core::{
    run_intervals_session, run_sharded_session, run_threaded, CoSimulation, DiffConfig, FaultPlan,
    IntervalTuning, RunOutcome, Session,
};
use difftest_h::dut::DutConfig;
use difftest_h::platform::Platform;
use difftest_h::stats::{validate_trace, Metrics, Phase, TraceSummary, Tracer, OBS_ENV, TRACE_ENV};
use difftest_h::workload::Workload;

/// Reads back a runner's exported trace, checks its structural
/// invariants and the `trace.*` counters it accounted.
fn check_trace(runner: &str, path: &PathBuf, metrics: &Metrics) -> TraceSummary {
    let recorded = metrics.counters.get("trace.spans_recorded");
    assert!(recorded > 0, "{runner}: trace.spans_recorded missing");
    assert_eq!(
        metrics.counters.get("trace.spans_dropped"),
        0,
        "{runner}: span buffers overflowed"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{runner}: trace not written to {}: {e}", path.display()));
    let summary = validate_trace(&text).unwrap_or_else(|e| panic!("{runner}: invalid trace: {e}"));
    assert!(summary.spans > 0, "{runner}: no duration events");
    assert!(summary.flows > 0, "{runner}: no pack→unpack flow arrows");
    println!(
        "          trace {}: {} spans, {} flows, {} tracks, {} recorded",
        path.display(),
        summary.spans,
        summary.flows,
        summary.tracks,
        recorded
    );
    summary
}

fn main() {
    let path = match std::env::var_os(OBS_ENV) {
        Some(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => {
            let p = std::env::temp_dir().join("difftest-obs-smoke.jsonl");
            std::env::set_var(OBS_ENV, &p);
            p
        }
    };
    // Start from a clean export: the runners append.
    let _ = std::fs::remove_file(&path);
    println!("exporting observability JSONL to {}\n", path.display());

    // Per-runner trace paths. The stem comes from `DIFFTEST_TRACE` when
    // set; the var is then cleared and tracers are injected through the
    // session seam instead, so the runners don't truncate one shared
    // file (and the untraced threaded leg stays dormant).
    let trace_stem = match std::env::var_os(TRACE_ENV) {
        Some(p) if !p.is_empty() => {
            std::env::remove_var(TRACE_ENV);
            PathBuf::from(p)
        }
        _ => std::env::temp_dir().join("difftest-obs-trace.json"),
    };
    let trace_for = |runner: &str| trace_stem.with_extension(format!("{runner}.json"));

    let w = Workload::microbench().seed(11).iterations(60).build();

    // 1. Virtual-time engine, BNSD: clean run, no snapshot expected.
    let engine_trace = trace_for("engine");
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::nutshell())
        .platform(Platform::palladium())
        .config(DiffConfig::BNSD)
        .max_cycles(400_000)
        .tracer(Tracer::to_path(&engine_trace))
        .build(&w)
        .expect("valid setup");
    let engine = sim.run();
    assert_eq!(engine.outcome, RunOutcome::GoodTrap);
    assert!(
        engine.flight.is_none(),
        "clean run must not attach a snapshot"
    );
    println!(
        "engine:   {:?}, packet.bytes p50 {}",
        engine.outcome,
        engine
            .metrics
            .histogram("packet.bytes")
            .map_or(0, |h| h.percentile(50.0))
    );
    let engine_summary = check_trace("engine", &engine_trace, &engine.metrics);
    assert_eq!(engine_summary.tracks, 2, "engine: producer + consumer");

    // 2. Threaded runner: clean run, wall-clock phase attribution.
    let t = run_threaded(
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        &w,
        Vec::new(),
        400_000,
        8,
    );
    assert_eq!(t.outcome, RunOutcome::GoodTrap);
    // No tracer injected and the env var is cleared: the threaded leg
    // demonstrates the dormant path — zero spans accounted.
    assert_eq!(
        t.metrics.counters.get("trace.spans_recorded"),
        0,
        "untraced run must not account spans"
    );
    println!(
        "threaded: {:?}, check phase {} ns (untraced: 0 spans)",
        t.outcome,
        t.metrics.phases.get(Phase::Check)
    );

    // 3. Sharded runner behind a hostile link: a typed failure with a
    //    flight snapshot (seed/rate chosen so the grid reliably faults).
    //    The trace still exports — producer tracks plus whatever the
    //    workers checked before the link gave out.
    let sharded_trace = trace_for("sharded");
    let s = run_sharded_session(
        Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            400_000,
            8,
            Some(FaultPlan::uniform(4242, 40)),
        )
        .with_tracer(Some(Tracer::to_path(&sharded_trace))),
    );
    println!("sharded (lossy link): {:?}", s.outcome);
    check_trace("sharded", &sharded_trace, &s.metrics);
    if let RunOutcome::LinkError { .. } = s.outcome {
        let snap = s
            .flight
            .as_ref()
            .expect("link error must attach a snapshot");
        assert!(!snap.records.is_empty(), "snapshot must carry records");
    }

    // 4. Interval runner: clean run, `interval.*` rows in the export,
    //    per-worker trace tracks with `interval.workers_busy` samples.
    let intervals_trace = trace_for("intervals");
    let iv = run_intervals_session(
        Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            400_000,
            8,
            None,
        )
        .with_tracer(Some(Tracer::to_path(&intervals_trace))),
        IntervalTuning::default(),
    );
    assert_eq!(iv.outcome, RunOutcome::GoodTrap);
    assert_eq!(iv.instructions_checked, iv.instructions);
    println!(
        "intervals: {:?}, {} intervals, {} checkpoint bytes, busy high-water {}, \
         span {:.0} ms",
        iv.outcome,
        iv.intervals,
        iv.checkpoint_bytes,
        iv.max_workers_busy,
        iv.span_s() * 1e3
    );
    let iv_summary = check_trace("intervals", &intervals_trace, &iv.metrics);
    assert!(
        iv_summary.counters > 0,
        "intervals: no interval.workers_busy counter samples"
    );

    // Validate the export: parse every line, collect phases per runner.
    let text = std::fs::read_to_string(&path).expect("export file written");
    let mut phases: BTreeSet<String> = BTreeSet::new();
    let mut runs = 0usize;
    let mut histograms = 0usize;
    let mut flight_snapshots = 0usize;
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
        if line.contains("\"type\":\"run\"") {
            runs += 1;
        } else if line.contains("\"type\":\"histogram\"") {
            histograms += 1;
        } else if line.contains("\"type\":\"flight_snapshot\"") {
            flight_snapshots += 1;
        } else if let Some(rest) = line.split("\"type\":\"phase\",\"name\":\"").nth(1) {
            if let Some(name) = rest.split('"').next() {
                phases.insert(name.to_owned());
            }
        }
    }
    assert_eq!(runs, 4, "four runners must have exported");
    assert!(
        text.contains("\"interval.count\""),
        "interval counters missing from export"
    );
    assert!(
        text.contains("\"interval.len\""),
        "interval length histogram missing from export"
    );
    assert!(
        text.contains("\"interval.workers_busy.max\""),
        "workers-busy gauge missing from export"
    );
    assert!(
        text.contains("\"interval.recording_cpu_us\"")
            && text.contains("\"interval.worker_cpu_max_us\""),
        "span busy-time counters missing from export"
    );
    for phase in Phase::ALL {
        assert!(
            phases.contains(phase.name()),
            "phase {phase} missing from export (got {phases:?})"
        );
    }
    assert!(histograms >= 2, "packet histograms missing from export");
    if matches!(s.outcome, RunOutcome::LinkError { .. }) {
        assert!(
            flight_snapshots >= 1,
            "link error exported without a flight snapshot"
        );
    }
    println!(
        "\nexport OK: {} lines, {} runs, {} histogram summaries, all {} phases, \
         {} flight snapshot(s)",
        text.lines().count(),
        runs,
        histograms,
        Phase::COUNT,
        flight_snapshots
    );
}
