//! Observability smoke: run every runner with `DIFFTEST_OBS` set and
//! validate the exported JSONL — all seven phases present, packet
//! histograms populated, and a flight-recorder snapshot attached to the
//! fault-injected failure.
//!
//! ```text
//! DIFFTEST_OBS=metrics.jsonl cargo run --release --example observability
//! ```
//!
//! Without `DIFFTEST_OBS` the example exports to a temporary file under
//! the target directory so `make obs` is self-contained.

use std::collections::BTreeSet;

use difftest_h::core::{
    run_intervals, run_sharded_faulty, run_threaded, CoSimulation, DiffConfig, FaultPlan,
    RunOutcome,
};
use difftest_h::dut::DutConfig;
use difftest_h::platform::Platform;
use difftest_h::stats::{Phase, OBS_ENV};
use difftest_h::workload::Workload;

fn main() {
    let path = match std::env::var_os(OBS_ENV) {
        Some(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => {
            let p = std::env::temp_dir().join("difftest-obs-smoke.jsonl");
            std::env::set_var(OBS_ENV, &p);
            p
        }
    };
    // Start from a clean export: the runners append.
    let _ = std::fs::remove_file(&path);
    println!("exporting observability JSONL to {}\n", path.display());

    let w = Workload::microbench().seed(11).iterations(60).build();

    // 1. Virtual-time engine, BNSD: clean run, no snapshot expected.
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::nutshell())
        .platform(Platform::palladium())
        .config(DiffConfig::BNSD)
        .max_cycles(400_000)
        .build(&w)
        .expect("valid setup");
    let engine = sim.run();
    assert_eq!(engine.outcome, RunOutcome::GoodTrap);
    assert!(
        engine.flight.is_none(),
        "clean run must not attach a snapshot"
    );
    println!(
        "engine:   {:?}, packet.bytes p50 {}",
        engine.outcome,
        engine
            .metrics
            .histogram("packet.bytes")
            .map_or(0, |h| h.percentile(50.0))
    );

    // 2. Threaded runner: clean run, wall-clock phase attribution.
    let t = run_threaded(
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        &w,
        Vec::new(),
        400_000,
        8,
    );
    assert_eq!(t.outcome, RunOutcome::GoodTrap);
    println!(
        "threaded: {:?}, check phase {} ns",
        t.outcome,
        t.metrics.phases.get(Phase::Check)
    );

    // 3. Sharded runner behind a hostile link: a typed failure with a
    //    flight snapshot (seed/rate chosen so the grid reliably faults).
    let s = run_sharded_faulty(
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        &w,
        Vec::new(),
        400_000,
        8,
        Some(FaultPlan::uniform(4242, 40)),
    );
    println!("sharded (lossy link): {:?}", s.outcome);
    if let RunOutcome::LinkError { .. } = s.outcome {
        let snap = s
            .flight
            .as_ref()
            .expect("link error must attach a snapshot");
        assert!(!snap.records.is_empty(), "snapshot must carry records");
    }

    // 4. Interval runner: clean run, `interval.*` rows in the export.
    let iv = run_intervals(
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        &w,
        Vec::new(),
        400_000,
        8,
    );
    assert_eq!(iv.outcome, RunOutcome::GoodTrap);
    assert_eq!(iv.instructions_checked, iv.instructions);
    println!(
        "intervals: {:?}, {} intervals, {} checkpoint bytes, busy high-water {}, \
         span {:.0} ms",
        iv.outcome,
        iv.intervals,
        iv.checkpoint_bytes,
        iv.max_workers_busy,
        iv.span_s() * 1e3
    );

    // Validate the export: parse every line, collect phases per runner.
    let text = std::fs::read_to_string(&path).expect("export file written");
    let mut phases: BTreeSet<String> = BTreeSet::new();
    let mut runs = 0usize;
    let mut histograms = 0usize;
    let mut flight_snapshots = 0usize;
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
        if line.contains("\"type\":\"run\"") {
            runs += 1;
        } else if line.contains("\"type\":\"histogram\"") {
            histograms += 1;
        } else if line.contains("\"type\":\"flight_snapshot\"") {
            flight_snapshots += 1;
        } else if let Some(rest) = line.split("\"type\":\"phase\",\"name\":\"").nth(1) {
            if let Some(name) = rest.split('"').next() {
                phases.insert(name.to_owned());
            }
        }
    }
    assert_eq!(runs, 4, "four runners must have exported");
    assert!(
        text.contains("\"interval.count\""),
        "interval counters missing from export"
    );
    assert!(
        text.contains("\"interval.len\""),
        "interval length histogram missing from export"
    );
    assert!(
        text.contains("\"interval.workers_busy.max\""),
        "workers-busy gauge missing from export"
    );
    assert!(
        text.contains("\"interval.recording_cpu_us\"")
            && text.contains("\"interval.worker_cpu_max_us\""),
        "span busy-time counters missing from export"
    );
    for phase in Phase::ALL {
        assert!(
            phases.contains(phase.name()),
            "phase {phase} missing from export (got {phases:?})"
        );
    }
    assert!(histograms >= 2, "packet histograms missing from export");
    if matches!(s.outcome, RunOutcome::LinkError { .. }) {
        assert!(
            flight_snapshots >= 1,
            "link error exported without a flight snapshot"
        );
    }
    println!(
        "\nexport OK: {} lines, {} runs, {} histogram summaries, all {} phases, \
         {} flight snapshot(s)",
        text.lines().count(),
        runs,
        histograms,
        Phase::COUNT,
        flight_snapshots
    );
}
