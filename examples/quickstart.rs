//! Quick start: run a full DiffTest-H co-simulation and print the report.
//!
//! Every transport substrate drives the identical pipeline, so the
//! runner is just a command-line choice dispatched through
//! [`run_runner`]:
//!
//! ```text
//! cargo run --release --example quickstart                    # engine
//! cargo run --release --example quickstart -- threaded
//! cargo run --release --example quickstart -- sharded
//! cargo run --release --example quickstart -- socket
//! ```

use difftest_h::core::{run_runner, DiffConfig, RunnerKind, RunnerReport};
use difftest_h::dut::DutConfig;
use difftest_h::stats::fmt_hz;
use difftest_h::workload::Workload;

fn main() {
    // MUST be first: the socket runner re-executes this binary as its
    // consumer process, which diverges here.
    difftest_h::core::child_entry();

    let kind = match std::env::args().nth(1).as_deref() {
        None | Some("engine") => RunnerKind::Engine,
        Some("threaded") => RunnerKind::Threaded,
        Some("sharded") => RunnerKind::Sharded,
        Some("socket") => RunnerKind::Socket,
        Some("intervals") => RunnerKind::Intervals,
        Some(other) => {
            eprintln!(
                "unknown runner {other:?}; expected engine|threaded|sharded|socket|intervals"
            );
            std::process::exit(2);
        }
    };

    // 1. Generate a workload: a boot-like program with CSR churn, timer
    //    interrupts, UART MMIO and exceptions — the non-deterministic mix
    //    that makes co-simulation hard.
    let workload = Workload::linux_boot().seed(42).iterations(300).build();

    // 2-3. Run the full DiffTest-H pipeline (Batch + NonBlock + Squash +
    //    Differencing + Replay) on a XiangShan-class DUT, on the chosen
    //    substrate, to the workload's good trap.
    let report = run_runner(
        kind,
        DutConfig::xiangshan_default(),
        DiffConfig::BNSD,
        &workload,
        Vec::new(),
        200_000,
        64,
        None,
    );

    // The shared report core every runner fills in.
    println!("runner:            {kind}");
    println!("outcome:           {:?}", report.outcome);
    println!("cycles simulated:  {}", report.cycles);
    println!("instructions:      {}", report.instructions);
    println!("items checked:     {}", report.items);
    if let Some((wall_s, cycles_per_sec)) = report.wall() {
        println!(
            "host wall clock:   {wall_s:.2}s ({:.0} Kcycles/s)",
            cycles_per_sec / 1e3
        );
    }

    // What only the virtual-time engine can say: simulated speeds and
    // the LogGP communication-overhead breakdown of the paper's §5.
    if let RunnerReport::Engine(report) = &report {
        println!("co-sim speed:      {}", fmt_hz(report.speed_hz));
        println!("DUT-only speed:    {}", fmt_hz(report.dut_only_hz));
        println!(
            "comm overhead:     {:.1}%",
            report.comm_overhead_fraction() * 100.0
        );
        println!("transfers:         {}", report.invokes);
        println!("bytes transferred: {}", report.bytes);
        if let Some(squash) = report.squash {
            println!(
                "fusion ratio:      {:.1} commits/record",
                squash.fusion_ratio()
            );
        }
        println!(
            "checker: {} events, {} instructions, {} skips, {} interrupts",
            report.check.events,
            report.check.instructions,
            report.check.skips,
            report.check.interrupts
        );
        println!(
            "\nperformance counters (paper \u{a7}5):\n{}",
            report.counters()
        );
    }
}
