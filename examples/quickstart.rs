//! Quick start: run a full DiffTest-H co-simulation and print the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use difftest_h::core::{CoSimulation, DiffConfig};
use difftest_h::dut::DutConfig;
use difftest_h::platform::Platform;
use difftest_h::stats::fmt_hz;
use difftest_h::workload::Workload;

fn main() {
    // 1. Generate a workload: a boot-like program with CSR churn, timer
    //    interrupts, UART MMIO and exceptions — the non-deterministic mix
    //    that makes co-simulation hard.
    let workload = Workload::linux_boot().seed(42).iterations(300).build();

    // 2. Build the co-simulation: XiangShan-class DUT on the Palladium
    //    platform model, with the full DiffTest-H pipeline
    //    (Batch + NonBlock + Squash + Differencing + Replay).
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::xiangshan_default())
        .platform(Platform::palladium())
        .config(DiffConfig::BNSD)
        .max_cycles(200_000)
        .build(&workload)
        .expect("valid setup");

    // 3. Run to the workload's good trap.
    let report = sim.run();

    println!("outcome:           {:?}", report.outcome);
    println!("cycles simulated:  {}", report.cycles);
    println!("instructions:      {}", report.instructions);
    println!("co-sim speed:      {}", fmt_hz(report.speed_hz));
    println!("DUT-only speed:    {}", fmt_hz(report.dut_only_hz));
    println!(
        "comm overhead:     {:.1}%",
        report.comm_overhead_fraction() * 100.0
    );
    println!("transfers:         {}", report.invokes);
    println!("bytes transferred: {}", report.bytes);
    if let Some(squash) = report.squash {
        println!(
            "fusion ratio:      {:.1} commits/record",
            squash.fusion_ratio()
        );
    }
    println!(
        "checker: {} events, {} instructions, {} skips, {} interrupts",
        report.check.events, report.check.instructions, report.check.skips, report.check.interrupts
    );
    println!(
        "\nperformance counters (paper \u{a7}5):\n{}",
        report.counters()
    );
}
