//! Hardware/software parallelism with real OS threads (paper §4.5).
//!
//! The producer thread runs the DUT and the acceleration unit; the
//! consumer thread unpacks and checks; a bounded channel between them is
//! the sending queue with backpressure. Compares wall-clock throughput of
//! the Batch-only and full-Squash pipelines.
//!
//! ```text
//! cargo run --release --example threaded
//! ```

use difftest_h::core::{run_threaded, DiffConfig, RunOutcome};
use difftest_h::dut::DutConfig;
use difftest_h::workload::Workload;

fn main() {
    let workload = Workload::linux_boot().seed(17).iterations(2_000).build();

    for config in [DiffConfig::BN, DiffConfig::BNSD] {
        let report = run_threaded(
            DutConfig::xiangshan_default(),
            config,
            &workload,
            Vec::new(),
            400_000,
            8,
        );
        assert_eq!(report.outcome, RunOutcome::GoodTrap);
        println!(
            "{config:10}  {} cycles, {} instructions, {} items checked \
             in {:.2}s  ->  {:.0} Kcycles/s host throughput",
            report.cycles,
            report.instructions,
            report.items,
            report.wall_s,
            report.cycles_per_sec / 1e3,
        );
    }
    println!(
        "\nSquash hands the checker far fewer items for the same cycles — \
         the software-side win that non-blocking transmission then overlaps."
    );
}
