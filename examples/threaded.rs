//! Hardware/software parallelism on real OS substrates (paper §4.5).
//!
//! The producer runs the DUT and the acceleration unit; the consumer
//! unpacks and checks; a bounded link between them is the sending queue
//! with backpressure. All wall-clock runners are one [`run_runner`]
//! dispatch away from each other — same pipeline, different substrate:
//! two threads (threaded), one consumer thread per core (sharded), or a
//! separate consumer process on a Unix socket (socket).
//!
//! ```text
//! cargo run --release --example threaded
//! ```

use difftest_h::core::{run_runner, DiffConfig, RunOutcome, RunnerKind};
use difftest_h::dut::DutConfig;
use difftest_h::workload::Workload;

fn main() {
    // MUST be first: the socket runner re-executes this binary as its
    // consumer process, which diverges here.
    difftest_h::core::child_entry();

    let workload = Workload::linux_boot().seed(17).iterations(2_000).build();

    for config in [DiffConfig::BN, DiffConfig::BNSD] {
        for kind in [
            RunnerKind::Threaded,
            RunnerKind::Sharded,
            RunnerKind::Socket,
        ] {
            let report = run_runner(
                kind,
                DutConfig::xiangshan_default(),
                config,
                &workload,
                Vec::new(),
                400_000,
                8,
                None,
            );
            assert_eq!(report.outcome, RunOutcome::GoodTrap);
            let (wall_s, cycles_per_sec) = report.wall().expect("wall-clock runner");
            println!(
                "{config:10} {kind:10} {} cycles, {} instructions, {} items checked \
                 in {wall_s:.2}s  ->  {:.0} Kcycles/s host throughput",
                report.cycles,
                report.instructions,
                report.items,
                cycles_per_sec / 1e3,
            );
        }
        println!();
    }
    println!(
        "Squash hands the checker far fewer items for the same cycles — \
         the software-side win that non-blocking transmission then overlaps. \
         The socket runner pays real IPC for its isolation: a dead consumer \
         is a typed link error, never a wedged address space."
    );
}
