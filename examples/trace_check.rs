//! CLI gate for exported span traces: validates each file's Chrome
//! trace-event structure (well-formed JSON, per-track monotonic
//! timestamps, properly nested spans, matched flow pairs) and prints a
//! one-line summary. Exits non-zero when any file is missing or
//! malformed — `scripts/trace_check` wraps this for CI.
//!
//! ```text
//! cargo run --release --example trace_check -- [--require-flows] <trace.json>...
//! ```
//!
//! `--require-flows` additionally demands cross-process causality: at
//! least one matched pack→unpack flow arrow and events on at least two
//! pids (producer and consumer) — the acceptance bar for the socket
//! runner's merged trace.

use std::collections::BTreeSet;

use difftest_h::stats::{parse_json, validate_trace, Json};

fn check(path: &str, require_flows: bool) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let summary = validate_trace(&text)?;
    if summary.spans == 0 {
        return Err("no duration events".into());
    }

    // validate() already parsed the text; re-parse for pid coverage.
    let root = parse_json(&text)?;
    let mut pids: BTreeSet<u64> = BTreeSet::new();
    if let Some(events) = root.get("traceEvents").and_then(Json::as_arr) {
        for ev in events {
            if let Some(pid) = ev.get("pid").and_then(Json::as_num) {
                pids.insert(pid as u64);
            }
        }
    }
    if require_flows {
        if summary.flows == 0 {
            return Err("no matched flow arrows (pack→unpack causality missing)".into());
        }
        if pids.len() < 2 {
            return Err(format!(
                "events on {} pid(s); producer and consumer tracks required",
                pids.len()
            ));
        }
    }
    Ok(format!(
        "{} events, {} spans, {} flows, {} counters, {} tracks, {} pid(s)",
        summary.events,
        summary.spans,
        summary.flows,
        summary.counters,
        summary.tracks,
        pids.len()
    ))
}

fn main() {
    let mut require_flows = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--require-flows" => require_flows = true,
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: trace_check [--require-flows] <trace.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match check(path, require_flows) {
            Ok(summary) => println!("{path}: OK — {summary}"),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
