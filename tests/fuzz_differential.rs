//! Differential fuzzing: randomized programs (interrupts racing random
//! blocks of arithmetic, memory, CSR, FP, atomic, MMIO and exception
//! traffic) must verify cleanly under both the baseline and the fully
//! optimized configuration, across seeds.

use difftest_h::core::{CoSimulation, DiffConfig, RunOutcome};
use difftest_h::dut::DutConfig;
use difftest_h::platform::Platform;
use difftest_h::workload::Workload;

#[test]
fn random_programs_verify_under_baseline_and_bnsd() {
    for seed in 0..6u64 {
        let w = Workload::fuzz().seed(seed).iterations(60).build();
        for config in [DiffConfig::Z, DiffConfig::BNSD] {
            let mut sim = CoSimulation::builder()
                .dut(DutConfig::xiangshan_minimal())
                .platform(Platform::palladium())
                .config(config)
                .max_cycles(400_000)
                .build(&w)
                .expect("valid setup");
            let report = sim.run();
            assert_eq!(
                report.outcome,
                RunOutcome::GoodTrap,
                "seed {seed} under {config:?}: {:?}",
                report.failure
            );
        }
    }
}

#[test]
fn random_programs_verify_on_every_dut_width() {
    let w = Workload::fuzz().seed(99).iterations(60).build();
    for dut in [
        DutConfig::nutshell(),
        DutConfig::xiangshan_minimal(),
        DutConfig::xiangshan_default(),
    ] {
        let name = dut.name.clone();
        let mut sim = CoSimulation::builder()
            .dut(dut)
            .platform(Platform::palladium())
            .config(DiffConfig::BNSD)
            .max_cycles(400_000)
            .build(&w)
            .expect("valid setup");
        let report = sim.run();
        assert_eq!(
            report.outcome,
            RunOutcome::GoodTrap,
            "{name}: {:?}",
            report.failure
        );
    }
}
