//! End-to-end acceptance for the process-separated socket runner.
//!
//! This test is harness-free (`harness = false` in Cargo.toml) because
//! the runner re-executes the current binary as its consumer process:
//! under the default libtest harness that re-exec would re-run the whole
//! suite recursively. Instead `main` hands consumer processes over to
//! [`difftest_h::core::child_entry`] first, then runs the checks below
//! sequentially, libtest-style.
//!
//! Coverage: clean and buggy runs are verdict-identical to the engine,
//! the producer-side fault grid stays typed (never a panic, never a
//! phantom mismatch), a consumer process killed mid-run surfaces as
//! [`RunOutcome::LinkError`] with the kill's exit code, and a consumer
//! process can never spawn a second generation of consumers.

use difftest_h::core::{
    run_runner, run_socket, run_socket_tuned, DiffConfig, LinkErrorKind, RunOutcome, RunnerKind,
    RunnerReport, SocketTuning, KILLED_EXIT,
};
use difftest_h::dut::{BugKind, BugSpec, DutConfig};
use difftest_h::stats::{parse_json, validate_trace, FlightKind, Json, TRACE_ENV};
use difftest_h::workload::Workload;

const MAX_CYCLES: u64 = 400_000;
const QUEUE_DEPTH: usize = 8;

fn run(kind: RunnerKind, config: DiffConfig, w: &Workload, bugs: Vec<BugSpec>) -> RunnerReport {
    run_runner(
        kind,
        DutConfig::nutshell(),
        config,
        w,
        bugs,
        MAX_CYCLES,
        QUEUE_DEPTH,
        None,
    )
}

/// Clean runs: the socket runner must reach the same verdict, check the
/// same item volume and commit the same instruction count as the
/// virtual-time engine — the transport is the only thing that changed.
fn clean_matches_engine() {
    let w = Workload::microbench().seed(11).iterations(40).build();
    for config in [DiffConfig::BN, DiffConfig::BNSD] {
        let e = run(RunnerKind::Engine, config, &w, Vec::new());
        let s = run(RunnerKind::Socket, config, &w, Vec::new());
        assert_eq!(s.outcome, RunOutcome::GoodTrap, "{config:?}");
        assert_eq!(s.outcome, e.outcome, "{config:?}");
        assert_eq!(s.items, e.items, "{config:?}: same stream, same items");
        assert_eq!(s.instructions, e.instructions, "{config:?}");
        assert!(
            s.flight.is_none(),
            "{config:?}: clean run carries a snapshot"
        );
    }
}

/// Buggy runs: an injected DUT bug must produce byte-for-byte the same
/// first mismatch on both sides of the process boundary (single core,
/// so arrival order is identical).
fn buggy_matches_engine() {
    let w = Workload::linux_boot().seed(7).iterations(300).build();
    let bugs = vec![BugSpec::new(BugKind::RegWriteCorruption, 2_000)];
    for config in [DiffConfig::BN, DiffConfig::BNSD] {
        let e = run(RunnerKind::Engine, config, &w, bugs.clone());
        let s = run(RunnerKind::Socket, config, &w, bugs.clone());
        assert_eq!(s.outcome, RunOutcome::Mismatch, "{config:?}");
        assert_eq!(s.outcome, e.outcome, "{config:?}");
        assert_eq!(s.mismatch, e.mismatch, "{config:?}: mismatch identity");
        let m = s.mismatch.as_ref().expect("mismatch report");
        let snap = s.flight.as_ref().expect("mismatch without flight snapshot");
        assert!(
            snap.records
                .iter()
                .any(|r| r.kind == FlightKind::Mismatch && r.value == m.seq),
            "{config:?}: snapshot missing the mismatch record"
        );
    }
}

/// Producer-side fault grid: the socket runner is report-only (no
/// retention ring), exactly like the threaded and sharded runners — on
/// the report-only BN pipeline its typed outcome must equal the
/// engine's on every schedule, and a fault must never surface as a
/// phantom mismatch or a panic.
fn fault_grid_matches_engine() {
    use difftest_h::core::FaultPlan;
    let w = Workload::microbench().seed(3).iterations(60).build();
    for seed in [11u64, 29, 4242] {
        for rate in [5u16, 20, 40] {
            let plan = FaultPlan::uniform(seed, rate);
            let ctx = format!("seed={seed} rate={rate}‰");
            let run_faulty = |kind| {
                run_runner(
                    kind,
                    DutConfig::nutshell(),
                    DiffConfig::BN,
                    &w,
                    Vec::new(),
                    MAX_CYCLES,
                    QUEUE_DEPTH,
                    Some(plan),
                )
            };
            let e = run_faulty(RunnerKind::Engine);
            let s = run_faulty(RunnerKind::Socket);
            assert!(
                matches!(
                    s.outcome,
                    RunOutcome::GoodTrap | RunOutcome::LinkError { .. }
                ),
                "{ctx}: fault must be recovered or typed, got {:?}",
                s.outcome
            );
            assert!(s.mismatch.is_none(), "{ctx}: phantom mismatch");
            assert_eq!(
                s.outcome, e.outcome,
                "{ctx}: same plan, same packet stream, same typed verdict"
            );
            if let RunOutcome::LinkError { seq, .. } = s.outcome {
                assert!(s.link.total_detected() > 0, "{ctx}: untyped link error");
                let snap = s
                    .flight
                    .as_ref()
                    .unwrap_or_else(|| panic!("{ctx}: link error without a flight snapshot"));
                assert!(
                    snap.find(FlightKind::LinkError, seq).is_some(),
                    "{ctx}: snapshot missing the link_error record"
                );
            }
        }
    }
}

/// Consumer-process death mid-run is a typed outcome, not a panic: the
/// producer sees EPIPE on the frame stream (or a short result blob),
/// reports [`LinkErrorKind::Gap`] attributed to the produced count, and
/// still reaps the child's exit code.
fn killed_consumer_is_a_typed_link_error() {
    let w = Workload::linux_boot().seed(7).iterations(300).build();
    let r = run_socket_tuned(
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        &w,
        Vec::new(),
        MAX_CYCLES,
        QUEUE_DEPTH,
        None,
        SocketTuning {
            kill_consumer_after: Some(2),
        },
    );
    match r.outcome {
        RunOutcome::LinkError { kind, .. } => {
            assert_eq!(kind, LinkErrorKind::Gap, "death mid-run is a gap")
        }
        other => panic!("consumer death must be typed, got {other:?}"),
    }
    assert_eq!(
        r.consumer_exit,
        Some(KILLED_EXIT),
        "producer reaps the killed consumer's exit code"
    );
    assert!(r.mismatch.is_none(), "no phantom mismatch from a dead pipe");
    assert!(r.cycles > 0, "the DUT side still ran");
    let snap = r
        .flight
        .as_ref()
        .expect("link error without flight snapshot");
    assert!(
        snap.records.iter().any(|x| x.kind == FlightKind::LinkError),
        "snapshot missing the link_error record"
    );
}

/// A process already marked as a socket consumer must refuse to start a
/// producer (which would spawn a consumer, which could spawn...): the
/// guard reports a typed setup failure instead.
fn consumer_processes_cannot_spawn_consumers() {
    let w = Workload::microbench().seed(1).iterations(5).build();
    std::env::set_var("DIFFTEST_SOCKET_ROLE", "stale");
    let r = run_socket_tuned(
        DutConfig::nutshell(),
        DiffConfig::BN,
        &w,
        Vec::new(),
        10_000,
        QUEUE_DEPTH,
        None,
        SocketTuning::default(),
    );
    std::env::remove_var("DIFFTEST_SOCKET_ROLE");
    assert!(
        matches!(
            r.outcome,
            RunOutcome::LinkError {
                kind: LinkErrorKind::Malformed,
                ..
            }
        ),
        "fork-bomb guard must trip, got {:?}",
        r.outcome
    );
    assert_eq!(r.cycles, 0, "guard trips before the DUT runs");
}

/// `DIFFTEST_TRACE` on the socket runner produces ONE merged
/// Chrome/Perfetto trace: the handshake ships the producer's clock
/// epoch to the child, the result blob ships the child's span buffers
/// back, and the export interleaves both processes' tracks. This test
/// is env-var-driven on purpose — it lives in this harness-free binary
/// (single-threaded `main`), where process-global `set_var` cannot race
/// another test thread.
fn trace_env_merges_both_processes() {
    let path =
        std::env::temp_dir().join(format!("difftest-socket-trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var(TRACE_ENV, &path);
    let w = Workload::microbench().seed(11).iterations(40).build();
    let r = run_socket(
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        &w,
        Vec::new(),
        MAX_CYCLES,
        QUEUE_DEPTH,
    );
    std::env::remove_var(TRACE_ENV);
    assert_eq!(r.outcome, RunOutcome::GoodTrap);
    assert!(
        r.metrics.counters.get("trace.spans_recorded") > 0,
        "trace counters missing from the report"
    );

    let text = std::fs::read_to_string(&path).expect("merged trace written");
    let summary = validate_trace(&text).expect("well-formed trace");
    assert_eq!(summary.tracks, 2, "producer + consumer track");
    assert!(summary.spans > 0, "no duration events");
    assert!(
        summary.flows > 0,
        "no matched pack→unpack flows across the process boundary"
    );

    // Both processes contributed: pack spans and flow starts on the
    // producer pid, unpack/check spans and flow ends on the consumer
    // pid — causally linked per sequence number.
    let root = parse_json(&text).expect("parse");
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let mut pack_ids = std::collections::BTreeSet::new();
    let mut unpack_ids = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let name = ev.get("name").and_then(Json::as_str).expect("name");
        let pid = ev.get("pid").and_then(Json::as_num).expect("pid") as u32;
        let id = || {
            ev.get("args")
                .and_then(|a| a.get("id"))
                .and_then(Json::as_num)
                .expect("span id") as u64
        };
        match (ph, name) {
            ("X", "pack") => {
                assert_eq!(pid, 1, "pack on the producer pid");
                pack_ids.insert(id());
            }
            ("X", "unpack") => {
                assert_eq!(pid, 2, "unpack on the consumer pid");
                unpack_ids.insert(id());
            }
            ("s", _) => assert_eq!((name, pid), ("pkt", 1)),
            ("f", _) => assert_eq!((name, pid), ("pkt", 2)),
            _ => {}
        }
    }
    assert!(!pack_ids.is_empty(), "producer contributed no pack spans");
    assert_eq!(
        pack_ids, unpack_ids,
        "every packed seq is unpacked in the other process"
    );
    let _ = std::fs::remove_file(&path);
}

fn main() {
    // MUST be first: a spawned consumer process diverges here and never
    // reaches the test list below.
    difftest_h::core::child_entry();

    let tests: &[(&str, fn())] = &[
        ("clean_matches_engine", clean_matches_engine),
        (
            "trace_env_merges_both_processes",
            trace_env_merges_both_processes,
        ),
        ("buggy_matches_engine", buggy_matches_engine),
        ("fault_grid_matches_engine", fault_grid_matches_engine),
        (
            "killed_consumer_is_a_typed_link_error",
            killed_consumer_is_a_typed_link_error,
        ),
        (
            "consumer_processes_cannot_spawn_consumers",
            consumer_processes_cannot_spawn_consumers,
        ),
    ];
    println!("\nrunning {} socket runner tests", tests.len());
    for (name, test) in tests {
        print!("test {name} ... ");
        test();
        println!("ok");
    }
    println!(
        "\ntest result: ok. {} passed; 0 failed (socket_runner)\n",
        tests.len()
    );
}
