//! The §5 tuning toolkit end-to-end: trace dump/reload, offline query
//! analysis, and DUT-decoupled trace-driven verification.

use difftest_h::core::{Checker, Verdict, WireItem};
use difftest_h::dut::{Dut, DutConfig};
use difftest_h::event::{EventKind, MonitoredEvent};
use difftest_h::ref_model::{Memory, RefModel};
use difftest_h::stats::{trace, TraceQuery};
use difftest_h::workload::Workload;

fn record(iterations: u32) -> (Memory, Vec<MonitoredEvent>) {
    let w = Workload::linux_boot()
        .seed(21)
        .iterations(iterations)
        .build();
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, w.words());
    let mut dut = Dut::new(DutConfig::xiangshan_default(), &image, Vec::new());
    let mut events = Vec::new();
    while dut.halted().is_none() && dut.cycles() < 300_000 {
        events.extend(dut.tick().events);
    }
    assert!(dut.halted().expect("trace run halts").good);
    (image, events)
}

#[test]
fn dump_reload_preserves_the_stream() {
    let (_, events) = record(40);
    let mut file = Vec::new();
    trace::dump(&mut file, &events).expect("dump succeeds");
    let reloaded = trace::reload(&file[..]).expect("reload succeeds");
    assert_eq!(reloaded, events);
}

#[test]
fn trace_driven_checking_reproduces_the_live_verdict() {
    // Iterative debugging support: drive the verification logic from the
    // recorded trace with no DUT in the loop.
    let (image, events) = record(40);
    let mut checker = Checker::new(vec![RefModel::new(image)], false);
    let mut halted = false;
    for ev in &events {
        let item = WireItem::Plain {
            core: ev.core,
            event: ev.event.clone(),
        };
        match checker.process(item).expect("clean trace verifies") {
            Verdict::Continue => {}
            Verdict::Halt { good, .. } => {
                assert!(good);
                halted = true;
                break;
            }
        }
    }
    assert!(halted, "trace must reach the good trap");
}

#[test]
fn query_engine_answers_offline_questions() {
    let (_, events) = record(40);
    let q = TraceQuery::new(&events);

    // Commits dominate control flow; NDEs exist; commits outnumber stores.
    let commits = TraceQuery::new(&events).kind(EventKind::InstrCommit);
    let stores = TraceQuery::new(&events).kind(EventKind::StoreEvent);
    let ndes = TraceQuery::new(&events).nde();
    assert!(commits.len() > stores.len());
    assert!(!ndes.is_empty());

    // Grouping accounts for every event exactly once.
    let by_kind = q.group_by_kind();
    let total: u64 = by_kind.values().map(|s| s.count).sum();
    assert_eq!(total as usize, events.len());

    // Byte accounting is consistent between groupings.
    let by_cat = q.group_by_category();
    let cat_bytes: u64 = by_cat.values().map(|s| s.bytes).sum();
    assert_eq!(cat_bytes, q.total_bytes());

    // Cycle-range filters compose.
    let early = TraceQuery::new(&events).cycles(0, 1_000);
    let late = TraceQuery::new(&events).filter(|e| e.cycle >= 1_000);
    assert_eq!(early.len() + late.len(), events.len());
}
