//! Cross-configuration equivalence: every optimization level verifies the
//! same workloads to the same good trap, checking the same instruction
//! stream — optimizations change communication, never semantics.

use difftest_h::core::{CoSimulation, DiffConfig, RunOutcome};
use difftest_h::dut::DutConfig;
use difftest_h::platform::Platform;
use difftest_h::workload::Workload;

fn run_one(workload: &Workload, dut: DutConfig, config: DiffConfig) -> (RunOutcome, u64, u64) {
    let mut sim = CoSimulation::builder()
        .dut(dut)
        .platform(Platform::palladium())
        .config(config)
        .max_cycles(400_000)
        .build(workload)
        .expect("valid setup");
    let report = sim.run();
    (report.outcome, report.cycles, report.instructions)
}

#[test]
fn all_workloads_verify_under_all_configs() {
    let workloads = [
        Workload::microbench().seed(3).iterations(60).build(),
        Workload::linux_boot().seed(3).iterations(60).build(),
        Workload::spec_like().seed(3).iterations(60).build(),
        Workload::mmio_heavy().seed(3).iterations(120).build(),
        Workload::trap_heavy().seed(3).iterations(120).build(),
    ];
    for w in &workloads {
        let mut reference: Option<(u64, u64)> = None;
        for config in DiffConfig::ALL {
            let (outcome, cycles, instructions) =
                run_one(w, DutConfig::xiangshan_minimal(), config);
            assert_eq!(
                outcome,
                RunOutcome::GoodTrap,
                "{} under {config:?}",
                w.name()
            );
            // The DUT execution is identical regardless of the
            // communication configuration.
            match reference {
                None => reference = Some((cycles, instructions)),
                Some(r) => assert_eq!(
                    (cycles, instructions),
                    r,
                    "{} under {config:?}: DUT execution must not depend on the transport",
                    w.name()
                ),
            }
        }
    }
}

#[test]
fn speeds_increase_monotonically_with_optimizations() {
    let w = Workload::linux_boot().seed(4).iterations(200).build();
    for platform in [Platform::palladium(), Platform::fpga()] {
        let mut last = 0.0;
        for config in DiffConfig::ALL {
            let mut sim = CoSimulation::builder()
                .dut(DutConfig::xiangshan_default())
                .platform(platform.clone())
                .config(config)
                .max_cycles(60_000)
                .build(&w)
                .expect("valid setup");
            let report = sim.run();
            assert!(
                report.speed_hz > last,
                "{config:?} on {} must be faster than the previous level \
                 ({} <= {last})",
                platform.name(),
                report.speed_hz
            );
            last = report.speed_hz;
        }
    }
}

#[test]
fn dual_core_verifies_and_reports_per_core() {
    let w = Workload::linux_boot().seed(6).iterations(80).build();
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::xiangshan_dual())
        .platform(Platform::palladium())
        .config(DiffConfig::BNSD)
        .max_cycles(400_000)
        .build(&w)
        .expect("valid setup");
    let report = sim.run();
    assert_eq!(report.outcome, RunOutcome::GoodTrap);
    // Both cores were checked. They run the same program under
    // independent stall timing, so their progress differs slightly at the
    // moment core 0 hits the good trap.
    let (a, b) = (sim.checker().seq(0), sim.checker().seq(1));
    assert!(a > 1_000 && b > 1_000, "both cores progressed ({a}, {b})");
    let gap = a.abs_diff(b) as f64 / a.max(b) as f64;
    assert!(gap < 0.05, "cores drifted too far apart ({a}, {b})");
}

#[test]
fn dual_core_bug_is_attributed_to_core_zero() {
    use difftest_h::dut::{BugKind, BugSpec};
    let w = Workload::linux_boot().seed(6).iterations(200).build();
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::xiangshan_dual())
        .platform(Platform::palladium())
        .config(DiffConfig::BNSD)
        .bugs(vec![BugSpec::new(BugKind::RegWriteCorruption, 5_000)])
        .max_cycles(400_000)
        .build(&w)
        .expect("valid setup");
    let report = sim.run();
    assert_eq!(report.outcome, RunOutcome::Mismatch);
    let failure = report.failure.expect("mismatch report");
    assert_eq!(failure.coarse.core, 0, "bugs are injected into core 0");
    assert_eq!(failure.precise.expect("replay localizes").core, 0);
}

#[test]
fn max_cycles_is_respected() {
    let w = Workload::linux_boot().seed(3).iterations(50_000).build();
    let (outcome, cycles, _) = run_one(&w, DutConfig::nutshell(), DiffConfig::BNSD);
    assert_eq!(outcome, RunOutcome::MaxCycles);
    assert_eq!(cycles, 400_000);
}
