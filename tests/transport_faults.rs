//! Transport-robustness tests (paper §4.5): the unified packet interface
//! must never *silently* accept disturbed transfer streams — reordering,
//! duplication, truncation or corruption must surface as decode errors or
//! checker mismatches, not as a clean good trap.

use difftest_h::core::{AccelUnit, Checker, SwUnit, Transfer, Verdict};
use difftest_h::dut::{Dut, DutConfig};
use difftest_h::ref_model::{Memory, RefModel};
use difftest_h::workload::Workload;

fn record_transfers() -> (Memory, Vec<Transfer>) {
    let w = Workload::linux_boot().seed(31).iterations(80).build();
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, w.words());
    let mut dut = Dut::new(DutConfig::xiangshan_minimal(), &image, Vec::new());
    let mut accel = AccelUnit::squash_batch(1, 4096, 32, false);
    let mut transfers = Vec::new();
    while dut.halted().is_none() && dut.cycles() < 200_000 {
        let out = dut.tick();
        accel.push_cycle(&out.events, &mut transfers);
    }
    accel.flush(&mut transfers);
    assert!(dut.halted().expect("run halts").good);
    assert!(transfers.len() > 10);
    (image, transfers)
}

/// Feeds a transfer stream to a fresh checker; returns `Ok(halted_good)`
/// or the first failure (decode error or mismatch) as `Err`.
fn check(image: &Memory, transfers: &[Transfer]) -> Result<bool, String> {
    let mut sw = SwUnit::packed(1);
    let mut checker = Checker::new(vec![RefModel::new(image.clone())], false);
    for t in transfers {
        let items = sw.decode(t).map_err(|e| format!("decode: {e}"))?;
        for item in items {
            match checker.process(item) {
                Ok(Verdict::Continue) => {}
                Ok(Verdict::Halt { good, .. }) => return Ok(good),
                Err(m) => return Err(format!("mismatch: {m}")),
            }
        }
    }
    // Drain order-tagged items whose position was reached (the trap event
    // of a fused stream arrives tagged).
    match checker.finalize() {
        Ok(Verdict::Halt { good, .. }) => Ok(good),
        Ok(Verdict::Continue) => Ok(false),
        Err(m) => Err(format!("mismatch: {m}")),
    }
}

#[test]
fn intact_stream_verifies() {
    let (image, transfers) = record_transfers();
    assert_eq!(check(&image, &transfers), Ok(true));
}

#[test]
fn reordered_packets_are_reassembled() {
    // Non-blocking links may deliver out of order; the sequence-numbered
    // packets let the receiver restore order (paper §4.5), so a swapped
    // pair verifies cleanly end to end.
    let (image, mut transfers) = record_transfers();
    let mid = transfers.len() / 2;
    transfers.swap(mid, mid + 1);
    assert_eq!(check(&image, &transfers), Ok(true));
}

#[test]
fn heavily_shuffled_window_is_reassembled() {
    let (image, mut transfers) = record_transfers();
    let mid = transfers.len() / 2;
    // Reverse an 8-packet window: worst-case local reordering.
    transfers[mid..mid + 8].reverse();
    assert_eq!(check(&image, &transfers), Ok(true));
}

#[test]
fn duplicated_packet_never_passes_silently() {
    let (image, mut transfers) = record_transfers();
    let dup = transfers[transfers.len() / 2].clone();
    transfers.insert(transfers.len() / 2, dup);
    assert!(
        check(&image, &transfers).is_err(),
        "a duplicated packet must surface as an error"
    );
}

#[test]
fn dropped_packet_stalls_instead_of_passing() {
    // A lost packet leaves a sequence gap: everything after it is held in
    // the reorder buffer and the stream never reaches its good trap.
    let (image, mut transfers) = record_transfers();
    transfers.remove(transfers.len() / 2);
    let verdict = check(&image, &transfers);
    assert_ne!(
        verdict,
        Ok(true),
        "a dropped packet must not verify: {verdict:?}"
    );
}

#[test]
fn corrupted_metadata_never_passes_silently() {
    // Corrupt the packet *metadata* (the first bytes): the meta-guided
    // parser must either fail or decode a visibly different stream — the
    // checker then flags it. (A flip inside an unchecked microarchitectural
    // context field, e.g. a ROB index, is legitimately tolerated.)
    let (image, mut transfers) = record_transfers();
    let mid = transfers.len() / 2;
    // Offset 6 = first meta entry (after the 4-byte sequence number and
    // the 2-byte meta count).
    transfers[mid].bytes[6] ^= 0x5a;
    assert!(
        check(&image, &transfers).is_err(),
        "corrupted metadata must surface as an error"
    );
}

#[test]
fn truncated_packet_is_a_decode_error() {
    let (image, mut transfers) = record_transfers();
    let mid = transfers.len() / 2;
    let len = transfers[mid].bytes.len();
    transfers[mid].bytes.truncate(len - 5);
    let err = check(&image, &transfers).expect_err("truncation must fail");
    assert!(err.starts_with("decode:"), "got: {err}");
}
