//! End-to-end bug detection: every injectable fault of the Table 6 catalog
//! is caught by the full DiffTest-H configuration, and Replay localizes it
//! to a concrete instruction and check.

use difftest_h::core::{CoSimulation, DiffConfig, RunOutcome};
use difftest_h::dut::{BugKind, BugSpec, DutConfig};
use difftest_h::platform::Platform;
use difftest_h::workload::Workload;

const ALL_BUGS: [BugKind; 19] = [
    BugKind::CorruptMepc,
    BugKind::WrongTrapCause,
    BugKind::WrongTval,
    BugKind::WrongTrapVector,
    BugKind::MstatusMieLeak,
    BugKind::WrongMpp,
    BugKind::StoreValueCorruption,
    BugKind::LostStore,
    BugKind::LoadValueCorruption,
    BugKind::StoreQueueAddrError,
    BugKind::SbufferMaskError,
    BugKind::RefillCorruption,
    BugKind::WrongVstart,
    BugKind::VsDirtyNotSet,
    BugKind::RegWriteCorruption,
    BugKind::WrongBranchTarget,
    BugKind::RedirectCorruption,
    BugKind::FpCsrStale,
    BugKind::VecConfigError,
];

fn detect(kind: BugKind, config: DiffConfig) -> (RunOutcome, Option<u64>) {
    // The boot-like workload exercises every event class the bugs corrupt
    // (traps, stores, CSRs, vector config, floating point, refills).
    let workload = Workload::linux_boot().seed(13).iterations(400).build();
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::xiangshan_minimal())
        .platform(Platform::palladium())
        .config(config)
        .bugs(vec![BugSpec::new(kind, 8_000)])
        .max_cycles(250_000)
        .build(&workload)
        .expect("valid setup");
    let report = sim.run();
    let precise_seq = report
        .failure
        .as_ref()
        .and_then(|f| f.precise.as_ref())
        .map(|m| m.seq);
    (report.outcome, precise_seq)
}

#[test]
fn every_catalog_bug_is_detected_by_bnsd() {
    for kind in ALL_BUGS {
        // Redirect events are subsumed by fusion (their content is implied
        // by the commit stream), so a monitor-side corruption of *only* the
        // redirect payload is invisible to the squashed stream — the one
        // coverage trade-off fusion makes. See the dedicated test below.
        if kind == BugKind::RedirectCorruption {
            continue;
        }
        let (outcome, precise) = detect(kind, DiffConfig::BNSD);
        assert_eq!(
            outcome,
            RunOutcome::Mismatch,
            "{kind:?} escaped the full DiffTest-H configuration"
        );
        assert!(
            precise.is_some(),
            "{kind:?} detected but not localized by Replay"
        );
    }
}

#[test]
fn subsumed_event_corruption_is_the_fusion_trade_off() {
    // A fault visible only in a subsumed event's payload is caught by the
    // unfused configurations but traded away by Squash.
    let (unfused, _) = detect(BugKind::RedirectCorruption, DiffConfig::B);
    assert_eq!(unfused, RunOutcome::Mismatch);
    let (fused, _) = detect(BugKind::RedirectCorruption, DiffConfig::BNSD);
    assert_eq!(fused, RunOutcome::GoodTrap);
}

#[test]
fn every_catalog_bug_is_detected_by_baseline() {
    // The unoptimized stream must catch the same faults (optimizations may
    // not change what is detectable).
    for kind in ALL_BUGS {
        let (outcome, precise) = detect(kind, DiffConfig::Z);
        assert_eq!(
            outcome,
            RunOutcome::Mismatch,
            "{kind:?} escaped the baseline"
        );
        assert!(precise.is_some(), "{kind:?} baseline mismatch lacks detail");
    }
}

#[test]
fn replay_localization_matches_unfused_detection() {
    // For architectural-state bugs the instruction Replay pins must equal
    // the instruction the plain (unfused) stream reports.
    for kind in [
        BugKind::RegWriteCorruption,
        BugKind::StoreValueCorruption,
        BugKind::LoadValueCorruption,
        BugKind::WrongBranchTarget,
    ] {
        let (_, plain_seq) = detect(kind, DiffConfig::B);
        let (_, replay_seq) = detect(kind, DiffConfig::BNSD);
        assert_eq!(
            plain_seq, replay_seq,
            "{kind:?}: Replay localization diverges from the unfused stream"
        );
    }
}

#[test]
fn bug_free_runs_stay_clean_with_replay_enabled() {
    let workload = Workload::linux_boot().seed(13).iterations(150).build();
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::xiangshan_minimal())
        .platform(Platform::palladium())
        .config(DiffConfig::BNSD)
        .max_cycles(250_000)
        .build(&workload)
        .expect("valid setup");
    assert_eq!(sim.run().outcome, RunOutcome::GoodTrap);
}
